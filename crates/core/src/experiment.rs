//! Experiment harness: runs Table 2 mixes under ROB configurations and
//! computes the paper's metrics.
//!
//! The [`Lab`] memoizes the single-threaded normalization runs (one per
//! `(mix, thread-slot)`, keyed by the full run-relevant state — see
//! [`NormKey`]) so sweeping many ROB configurations — as every figure
//! does — pays the normalization cost once.
//!
//! Sweeps run in two phases ([`Lab::sweep`]): phase 1 serially
//! precomputes every normalization run the cells need into an
//! immutable [`NormTable`]; phase 2 fans the `mix × config` cells out
//! across scoped worker threads (`SMTSIM_JOBS` via the figure
//! binaries), each panic-isolated, and merges results in input order —
//! so rendered figures are byte-identical at any job count.

use crate::journal::{self, cell_key, Journal, JournalEntry, JournalError};
use crate::metrics::{fair_throughput, weighted_ipc};
use crate::twolevel::{TwoLevelConfig, TwoLevelRob, TwoLevelStats};
use smtsim_analysis::{DodAnalysis, L1_WINDOW};
use smtsim_obs::{Episode, EpisodeReconstructor, MetricsRegistry, TraceEvent, TraceLog, Tracer};
use smtsim_pipeline::{
    CancelToken, DodBounds, FaultPlan, FaultStats, FixedRob, MachineConfig, RobAllocator,
    RunBudget, SimError, SimStats, Simulator, StopCondition,
};
use smtsim_workload::{mix, Workload};
use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Static per-load DoD bound tables for a set of workloads, one table
/// per hardware thread. The bounds come from the interprocedural
/// dependence analysis (`smtsim-analysis`) over the same first-level
/// window the hardware counter scans; the simulator cross-checks its
/// exact dependent count against them at every L2 fill.
fn static_bounds(wls: &[Arc<Workload>]) -> Vec<DodBounds> {
    wls.iter()
        .map(|w| DodBounds::new(DodAnalysis::compute(&w.program, L1_WINDOW).max_map()))
        .collect()
}

/// A ROB configuration under test.
#[derive(Clone, Copy, Debug)]
pub enum RobConfig {
    /// Private fixed per-thread ROBs (`Baseline_32`, `Baseline_128`).
    Baseline(usize),
    /// A two-level scheme.
    TwoLevel(TwoLevelConfig),
}

impl RobConfig {
    /// Builds the allocator.
    pub fn build(&self) -> Box<dyn RobAllocator> {
        match *self {
            RobConfig::Baseline(n) => Box::new(FixedRob::new(n)),
            RobConfig::TwoLevel(cfg) => Box::new(TwoLevelRob::new(cfg)),
        }
    }

    /// Display label (matches the paper's legends).
    pub fn label(&self) -> String {
        self.build().name()
    }

    /// Canonical value fingerprint: a string derived from every
    /// configuration field. Unlike [`RobConfig::label`] — which names
    /// only the scheme and threshold — this distinguishes two distinct
    /// configurations that happen to share a display name (e.g. two
    /// `2-Level R-ROB16`s with different second-level sizes), so it is
    /// what the normalization cache keys on.
    pub fn fingerprint(&self) -> String {
        format!("{self:?}")
    }
}

/// Result of one mix × configuration run.
#[derive(Clone, Debug)]
pub struct MixRun {
    /// "Mix 1" .. "Mix 11".
    pub mix: String,
    /// Configuration label.
    pub config: String,
    /// Fair throughput (harmonic mean of weighted IPCs).
    pub ft: f64,
    /// Raw throughput (sum of IPCs).
    pub throughput: f64,
    /// Per-thread multithreaded IPC.
    pub ipc: Vec<f64>,
    /// Per-thread single-threaded (alone) IPC used for normalization.
    pub single_ipc: Vec<f64>,
    /// Per-thread weighted IPC.
    pub weighted: Vec<f64>,
    /// Full machine statistics.
    pub stats: SimStats,
    /// Two-level allocator statistics, when applicable.
    pub twolevel: Option<TwoLevelStats>,
    /// Faults actually injected during the multithreaded run (all zero
    /// when no [`FaultPlan`] was installed for the mix).
    pub faults: FaultStats,
}

/// Result of one mix × configuration run with tracing armed: the
/// [`MixRun`] metrics plus the raw event stream and the two standard
/// reductions over it (complete L2-miss episodes and the metrics
/// registry). Produced by [`Lab::run_cell_traced`] / [`Lab::sweep_traced`].
#[derive(Clone, Debug)]
pub struct TracedMixRun {
    /// The ordinary run result (identical to the untraced run: tracing
    /// observes the simulation without perturbing it).
    pub run: MixRun,
    /// The raw `(cycle, event)` stream, in emission order.
    pub events: Vec<(u64, TraceEvent)>,
    /// L2-miss episodes reconstructed from the stream.
    pub episodes: Vec<Episode>,
    /// Counters and histograms folded from the stream.
    pub metrics: MetricsRegistry,
}

/// Cache key of one memoized normalization run. Every input that can
/// change the measured single-threaded IPC participates: the workload
/// (`mix`, `slot`, `seed`), the run length (`st_budget`, `warmup`),
/// the reference ROB configuration (by value fingerprint, not display
/// label) and the machine configuration. Mutating any of these on the
/// [`Lab`] therefore misses the cache instead of silently serving an
/// IPC measured under the old state.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct NormKey {
    mix: usize,
    slot: usize,
    config: String,
    st_budget: u64,
    warmup: u64,
    seed: u64,
    machine: String,
}

/// Immutable product of a sweep's phase 1: the single-threaded
/// reference IPC (or the typed error its run produced) for every
/// `(mix, slot)` the sweep's cells need, all measured under
/// [`Lab::norm`]. Computed serially in deterministic `(mix, slot)`
/// order, then shared read-only by the phase-2 workers.
#[derive(Clone, Debug)]
pub struct NormTable {
    entries: BTreeMap<(usize, usize), Result<f64, SimError>>,
}

impl NormTable {
    /// The reference IPC of `(mix, slot)`, or the error its
    /// normalization run produced. A missing entry (the table was
    /// built for a different mix set) is an [`SimError::InvalidConfig`].
    pub fn get(&self, mix: usize, slot: usize) -> Result<f64, SimError> {
        match self.entries.get(&(mix, slot)) {
            Some(r) => r.clone(),
            None => Err(SimError::InvalidConfig {
                reason: format!("normalization table has no entry for mix {mix} slot {slot}"),
            }),
        }
    }

    /// Number of `(mix, slot)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Folds `other`'s entries into this table; on overlap the entry
    /// from `other` wins. Only meaningful for tables measured under
    /// the same experiment universe (where overlapping entries are
    /// identical by determinism) — an embedding daemon uses this to
    /// keep one warm table per universe across requests.
    pub fn merge(&mut self, other: &NormTable) {
        for (k, v) in &other.entries {
            self.entries.insert(*k, v.clone());
        }
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One cell of a sweep: a mix index under a ROB configuration.
pub type SweepCell = (usize, RobConfig);

/// Runs `f` with panics converted to [`SimError::CellPanic`], so one
/// poisoned sweep cell degrades to an `n/a` figure cell instead of
/// killing the whole sweep (or a worker thread).
fn catch_cell<T>(f: impl FnOnce() -> T) -> Result<T, SimError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let reason = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        SimError::CellPanic { reason }
    })
}

/// SplitMix64 — the deterministic mixer behind the retry layer's
/// seeded backoff ordering (wall-clock randomness would break the
/// byte-identity guarantees of resumed sweeps).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Outcome of one sweep cell under the resilient engine
/// ([`Lab::sweep_cells`]).
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The final result, after any retries (or as loaded from the
    /// journal).
    pub result: Result<MixRun, SimError>,
    /// Attempts the cell took (1 = first try). Journal hits report the
    /// attempt count recorded when the cell originally completed, so
    /// this field — and everything derived from it — is identical
    /// between a resumed sweep and an uninterrupted one.
    pub attempts: u32,
    /// True when the result was loaded from the journal instead of run.
    pub from_journal: bool,
}

/// Per-sweep health summary: cells ok / retried-then-ok / timed out /
/// failed, plus the total number of extra attempts the retry layer
/// spent. Derived purely from cell *results* (never from the execution
/// path), so a resumed sweep and an uninterrupted one summarize
/// identically — which is what lets the figure layer append this to
/// footers without breaking resume byte-identity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepHealth {
    /// Cells that produced a result (including retried-then-ok ones).
    pub ok: usize,
    /// Subset of `ok` that needed more than one attempt.
    pub retried: usize,
    /// Cells whose final result was a watchdog timeout.
    pub timed_out: usize,
    /// Cells whose final result was any other error.
    pub failed: usize,
    /// Total attempts beyond the first, summed over all cells.
    pub extra_attempts: usize,
}

impl SweepHealth {
    /// Folds a sweep's outcomes into the summary.
    pub fn from_outcomes(outcomes: &[CellOutcome]) -> Self {
        let mut h = SweepHealth::default();
        for o in outcomes {
            h.extra_attempts += o.attempts.saturating_sub(1) as usize;
            match &o.result {
                Ok(_) => {
                    h.ok += 1;
                    if o.attempts > 1 {
                        h.retried += 1;
                    }
                }
                Err(SimError::CellTimeout { .. }) => h.timed_out += 1,
                Err(_) => h.failed += 1,
            }
        }
        h
    }

    /// Total cells summarized.
    pub fn total(&self) -> usize {
        self.ok + self.timed_out + self.failed
    }

    /// True when no cell timed out or failed.
    pub fn all_ok(&self) -> bool {
        self.timed_out == 0 && self.failed == 0
    }

    /// The one-line footer the figure layer appends when any
    /// resilience feature is active.
    pub fn summary_line(&self) -> String {
        format!(
            "sweep health: {} ok ({} retried), {} timed out, {} failed",
            self.ok, self.retried, self.timed_out, self.failed
        )
    }

    /// Folds the summary into an observability registry under the
    /// `sweep.*` counter keys.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        reg.bump_by("sweep.cells_ok", self.ok as u64);
        reg.bump_by("sweep.cells_retried", self.retried as u64);
        reg.bump_by("sweep.cells_timed_out", self.timed_out as u64);
        reg.bump_by("sweep.cells_failed", self.failed as u64);
        reg.bump_by("sweep.retry_attempts", self.extra_attempts as u64);
    }
}

/// Everything a resilient sweep produces: per-cell outcomes in input
/// order plus the [`SweepHealth`] summary.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// One outcome per input cell, in input order.
    pub outcomes: Vec<CellOutcome>,
    /// The path-independent health summary over `outcomes`.
    pub health: SweepHealth,
}

impl SweepReport {
    /// Strips the report down to the classic result vector.
    pub fn results(self) -> Vec<Result<MixRun, SimError>> {
        self.outcomes.into_iter().map(|o| o.result).collect()
    }

    /// Cells served from the journal instead of being re-run. (Path-
    /// *dependent* by nature — this is deliberately not part of
    /// [`SweepHealth`] and never rendered into figures.)
    pub fn journal_hits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.from_journal).count()
    }

    /// Folds health counters plus the journal-hit count into an
    /// observability registry.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        self.health.record_metrics(reg);
        reg.bump_by("sweep.journal_hits", self.journal_hits() as u64);
    }
}

/// Experiment driver with memoized normalization runs.
pub struct Lab {
    /// The multithreaded machine (defaults to Table 1).
    pub machine: MachineConfig,
    /// Workload-generation seed.
    pub seed: u64,
    /// Commit target for multithreaded runs (the run stops when any
    /// thread reaches it, as in the paper).
    pub mt_budget: u64,
    /// Commit target for single-threaded normalization runs.
    pub st_budget: u64,
    /// Functional warm-up instructions per thread before timed
    /// simulation (caches and predictors; see `SimulatorBuilder::warmup`).
    pub warmup: u64,
    /// Configuration of the reference machine used for the
    /// single-threaded normalization runs. Weighted IPCs of *every*
    /// configuration are normalized against the same reference
    /// (Baseline_32 alone), so FT values are directly comparable across
    /// the paper's bar charts.
    pub norm: RobConfig,
    /// Worker threads for [`Lab::sweep`]: `None` (the default) uses
    /// [`std::thread::available_parallelism`]; `Some(1)` forces the
    /// serial path. The figure binaries set this from the
    /// `SMTSIM_JOBS` environment knob. The sweep output is
    /// byte-identical at any job count.
    pub jobs: Option<usize>,
    single_cache: BTreeMap<NormKey, f64>,
    /// Fault plan applied to every multithreaded run (see
    /// [`Lab::set_fault`]).
    global_fault: Option<FaultPlan>,
    /// Per-mix fault plans; these take precedence over `global_fault`.
    mix_faults: BTreeMap<usize, FaultPlan>,
    /// Per-mix *transient* fault plans, applied only while the cell's
    /// attempt number is at or below the stored bound (see
    /// [`Lab::set_transient_fault`]); these model faults the retry
    /// layer can recover from.
    transient_faults: BTreeMap<usize, (FaultPlan, u32)>,
    /// Resumable sweep-journal path (`SMTSIM_JOURNAL`); `None` = no
    /// journaling. See [`crate::journal`].
    pub journal_path: Option<PathBuf>,
    /// The open journal (lazily created from `journal_path`, dropped
    /// whenever the lab state — and therefore the universe
    /// fingerprint — changes).
    journal: Option<Arc<Journal>>,
    /// Simulated-cycle ceiling per sweep cell (`SMTSIM_CELL_CYCLES`);
    /// the deterministic watchdog. `None` = unlimited.
    pub cell_cycle_budget: Option<u64>,
    /// Wall-clock ceiling per sweep cell in milliseconds
    /// (`SMTSIM_CELL_TIMEOUT`); non-deterministic by nature. `None` =
    /// unlimited.
    pub cell_wall_ms: Option<u64>,
    /// Retries per transiently-failed sweep cell
    /// (`SMTSIM_CELL_RETRIES`); 0 = the pre-resilience behavior.
    pub retries: u32,
    /// Event-driven cycle skipping in every simulator this lab builds
    /// (`SMTSIM_NO_SKIP` disables it). Timing-transparent by
    /// construction — results are byte-identical either way — so it is
    /// deliberately *not* part of [`NormKey`] or the journal universe
    /// fingerprint.
    pub cycle_skip: bool,
    /// Cooperative cancellation for every *measured* (multithreaded)
    /// cell this lab runs: an embedding daemon arms one token per
    /// request and the cycle loop polls it through [`RunBudget`]. A
    /// cancelled cell fails with a typed
    /// [`SimError::CellTimeout`]-family error — never a wrong value —
    /// and normalization runs are unmetered, so the single-thread
    /// cache only ever stores healthy references. Operational like
    /// [`Lab::jobs`]: deliberately not part of [`NormKey`] or the
    /// journal universe fingerprint.
    pub cancel: Option<CancelToken>,
    /// Content fingerprint of the experiment spec driving this lab
    /// (see [`crate::spec::ExperimentSpec::fingerprint`]); `None` for
    /// labs built outside the spec layer. Part of the journal universe:
    /// a journal resumed against an edited spec is rejected with a
    /// typed [`JournalError::UniverseMismatch`] instead of silently
    /// mixing universes.
    pub spec_fingerprint: Option<String>,
}

impl Lab {
    /// A lab over the paper's Table 1 machine with laptop-scale
    /// budgets (see EXPERIMENTS.md for the budget used per figure).
    pub fn new(seed: u64) -> Self {
        Lab {
            machine: MachineConfig::icpp08(),
            seed,
            mt_budget: 60_000,
            st_budget: 60_000,
            warmup: 60_000,
            norm: RobConfig::Baseline(32),
            jobs: None,
            single_cache: BTreeMap::new(),
            global_fault: None,
            mix_faults: BTreeMap::new(),
            transient_faults: BTreeMap::new(),
            journal_path: None,
            journal: None,
            cell_cycle_budget: None,
            cell_wall_ms: None,
            retries: 0,
            cycle_skip: true,
            cancel: None,
            spec_fingerprint: None,
        }
    }

    /// Overrides the commit budgets.
    pub fn with_budgets(mut self, mt: u64, st: u64) -> Self {
        self.change_state(|lab| {
            lab.mt_budget = mt;
            lab.st_budget = st;
        });
        self
    }

    /// Overrides the functional warm-up length (instructions per
    /// thread).
    #[must_use]
    pub fn with_warmup(mut self, insts: u64) -> Self {
        self.change_state(|lab| lab.warmup = insts);
        self
    }

    /// Overrides the sweep worker-thread count (`None` = available
    /// parallelism; the sweep output is byte-identical either way).
    #[must_use]
    pub fn with_jobs(mut self, jobs: Option<usize>) -> Self {
        self.change_state(|lab| lab.jobs = jobs);
        self
    }

    /// Overrides the reference configuration for single-threaded
    /// normalization runs.
    #[must_use]
    pub fn with_norm(mut self, norm: RobConfig) -> Self {
        self.change_state(|lab| lab.norm = norm);
        self
    }

    /// Arms the resumable on-disk journal: completed sweep cells are
    /// appended to `path` and skipped on the next sweep over the same
    /// experiment universe (`SMTSIM_JOURNAL`).
    #[must_use]
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        self.change_state(|lab| lab.journal_path = Some(path));
        self
    }

    /// Sets the deterministic simulated-cycle watchdog ceiling per
    /// sweep cell (`SMTSIM_CELL_CYCLES`; `None` = unlimited).
    #[must_use]
    pub fn with_cell_cycle_budget(mut self, cycles: Option<u64>) -> Self {
        self.change_state(|lab| lab.cell_cycle_budget = cycles);
        self
    }

    /// Sets the wall-clock watchdog ceiling per sweep cell, in
    /// milliseconds (`SMTSIM_CELL_TIMEOUT`; `None` = unlimited).
    #[must_use]
    pub fn with_cell_wall_ms(mut self, ms: Option<u64>) -> Self {
        self.change_state(|lab| lab.cell_wall_ms = ms);
        self
    }

    /// Sets the retry count for transiently-failed sweep cells
    /// (`SMTSIM_CELL_RETRIES`).
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.change_state(|lab| lab.retries = retries);
        self
    }

    /// Enables or disables event-driven cycle skipping in every
    /// simulator the lab builds (`SMTSIM_NO_SKIP`). Validation-only:
    /// the output is byte-identical either way.
    #[must_use]
    pub fn with_cycle_skip(mut self, enabled: bool) -> Self {
        self.change_state(|lab| lab.cycle_skip = enabled);
        self
    }

    /// Stamps the lab with the content fingerprint of the experiment
    /// spec that configured it, binding any journal to that exact spec
    /// (`None` clears the stamp).
    #[must_use]
    pub fn with_spec_fingerprint(mut self, fingerprint: Option<String>) -> Self {
        self.change_state(|lab| lab.spec_fingerprint = fingerprint);
        self
    }

    /// Arms (or clears) the cooperative per-cell cancellation token
    /// (see the [`Lab::cancel`] field). Call before
    /// [`Lab::adopt_journal`] / [`Lab::open_journal`]: like every
    /// builder it routes through the state-change funnel, which drops
    /// any open journal handle.
    #[must_use]
    pub fn with_cancel_token(mut self, token: Option<CancelToken>) -> Self {
        self.change_state(|lab| lab.cancel = token);
        self
    }

    /// The single funnel for builder-style state changes. The
    /// normalization cache needs no flushing here *by construction*:
    /// every run-relevant field participates in [`NormKey`], so a
    /// changed field misses the cache instead of hitting a stale entry
    /// (and restoring the old value legitimately re-hits the old
    /// entry). Route any new `with_*` mutation through this point — if
    /// the cache ever grows state [`NormKey`] cannot see, this is the
    /// one place that must learn to invalidate it.
    fn change_state(&mut self, apply: impl FnOnce(&mut Self)) {
        apply(self);
        // A state change may move the lab into a different experiment
        // universe; drop any open journal so the next sweep re-opens —
        // and re-validates — it under the new universe fingerprint.
        // (Direct field mutation bypasses this funnel; the engine
        // re-checks the fingerprint at every `ensure_journal`.)
        self.journal = None;
    }

    /// Installs a fault plan for multithreaded runs: `mix = None` sets a
    /// lab-wide plan, `mix = Some(i)` targets one mix (and overrides the
    /// lab-wide plan for it). Single-threaded normalization runs are
    /// never faulted — they define the healthy reference every weighted
    /// IPC is measured against.
    pub fn set_fault(&mut self, mix: Option<usize>, plan: FaultPlan) {
        self.change_state(|lab| match mix {
            None => lab.global_fault = Some(plan),
            Some(i) => {
                lab.mix_faults.insert(i, plan);
            }
        });
    }

    /// Installs a *transient* fault plan for `mix`: the plan applies
    /// only while the cell's attempt number is `<= active_attempts`
    /// and takes precedence over [`Lab::set_fault`] plans while
    /// active. This models a fault that clears on re-run — the retry
    /// layer's recovery target (and its test fixture).
    pub fn set_transient_fault(&mut self, mix: usize, plan: FaultPlan, active_attempts: u32) {
        self.change_state(|lab| {
            lab.transient_faults.insert(mix, (plan, active_attempts));
        });
    }

    /// Removes all installed fault plans (persistent and transient).
    pub fn clear_faults(&mut self) {
        self.change_state(|lab| {
            lab.global_fault = None;
            lab.mix_faults.clear();
            lab.transient_faults.clear();
        });
    }

    /// The plan a multithreaded run of `mix_idx` would use, if any.
    pub fn fault_for(&self, mix_idx: usize) -> Option<&FaultPlan> {
        self.mix_faults.get(&mix_idx).or(self.global_fault.as_ref())
    }

    /// The plan attempt number `attempt` of `mix_idx` would use: an
    /// active transient plan wins, then the persistent plans.
    fn fault_for_attempt(&self, mix_idx: usize, attempt: u32) -> Option<&FaultPlan> {
        if let Some((plan, active)) = self.transient_faults.get(&mix_idx) {
            if attempt <= *active {
                return Some(plan);
            }
        }
        self.fault_for(mix_idx)
    }

    /// Single-threaded IPC of `slot` in `mix_idx` under `rob` — the
    /// thread running *alone* on that machine (memoized). `run_mix`
    /// always normalizes with [`Lab::norm`]; this method is public so
    /// studies can also compute per-configuration baselines.
    pub fn single_ipc(&mut self, mix_idx: usize, slot: usize, rob: RobConfig) -> f64 {
        match self.try_single_ipc(mix_idx, slot, rob) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Lab::single_ipc`]: configuration errors,
    /// deadlocks and invariant violations come back as [`SimError`]
    /// instead of aborting the sweep.
    pub fn try_single_ipc(
        &mut self,
        mix_idx: usize,
        slot: usize,
        rob: RobConfig,
    ) -> Result<f64, SimError> {
        let key = self.norm_key(mix_idx, slot, rob);
        if let Some(&v) = self.single_cache.get(&key) {
            return Ok(v);
        }
        let wl = Arc::new(mix(mix_idx).instantiate_single(slot, self.seed));
        let bounds = static_bounds(std::slice::from_ref(&wl));
        let mut cfg = self.machine.clone();
        cfg.num_threads = 1;
        cfg.fetch_threads = 1;
        let mut sim = Simulator::builder(cfg, vec![wl], rob.build(), self.seed)
            .dod_bounds(bounds)
            .warmup(self.warmup)
            .cycle_skip(self.cycle_skip)
            .build()?;
        sim.try_run(StopCondition::AnyThreadCommitted(self.st_budget))?;
        let ipc = sim.stats().threads[0].ipc(sim.cycle());
        self.single_cache.insert(key, ipc);
        Ok(ipc)
    }

    /// The cache key a normalization run of `(mix, slot)` under `rob`
    /// would use given the lab's *current* state.
    fn norm_key(&self, mix_idx: usize, slot: usize, rob: RobConfig) -> NormKey {
        NormKey {
            mix: mix_idx,
            slot,
            config: rob.fingerprint(),
            st_budget: self.st_budget,
            warmup: self.warmup,
            seed: self.seed,
            machine: format!("{:?}", self.machine),
        }
    }

    /// Number of distinct normalization runs currently memoized
    /// (distinct [`NormKey`]s — mutating budgets, seed, warm-up or the
    /// machine grows this rather than overwriting entries).
    pub fn cached_norm_runs(&self) -> usize {
        self.single_cache.len()
    }

    /// Pre-warms the normalization cache from a [`NormTable`] computed
    /// earlier. Entries are keyed under the lab's *current* state, so
    /// the caller must only seed tables measured under the same seed,
    /// budgets, warm-up, machine and norm reference — the serve daemon
    /// enforces this by storing tables per [`Lab::journal_universe`],
    /// which covers every one of those fields. Only healthy entries
    /// are seeded: errors are never cached, exactly as in
    /// [`Lab::try_single_ipc`]. Deliberately bypasses the state-change
    /// funnel — warming the cache mutates no universe-relevant state,
    /// so an open journal stays valid.
    pub fn seed_norm_cache(&mut self, table: &NormTable) {
        let norm = self.norm;
        for (&(m, slot), r) in &table.entries {
            if let Ok(v) = r {
                let key = self.norm_key(m, slot, norm);
                self.single_cache.insert(key, *v);
            }
        }
    }

    /// Worker-thread count a sweep would use right now: [`Lab::jobs`]
    /// if set, otherwise the machine's available parallelism.
    pub fn effective_jobs(&self) -> usize {
        self.jobs
            .or_else(|| {
                std::thread::available_parallelism()
                    .ok()
                    .map(NonZeroUsize::get)
            })
            .unwrap_or(1)
            .max(1)
    }

    /// Phase 1 of a sweep: computes (and memoizes) the normalization
    /// run of every `(mix, slot)` in `mixes` under [`Lab::norm`],
    /// serially, in ascending `(mix, slot)` order, and snapshots the
    /// results into an immutable [`NormTable`]. A mix whose very
    /// instantiation panics is skipped here — its phase-2 cells hit
    /// the same panic and report it per cell.
    pub fn norm_table(&mut self, mixes: &[usize]) -> NormTable {
        let mut sorted: Vec<usize> = mixes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut entries = BTreeMap::new();
        let norm = self.norm;
        for m in sorted {
            let Ok(slots) = catch_cell(|| mix(m).benchmarks.len()) else {
                continue;
            };
            for slot in 0..slots {
                let r = catch_cell(|| self.try_single_ipc(m, slot, norm)).and_then(|r| r);
                entries.insert((m, slot), r);
            }
        }
        NormTable { entries }
    }

    /// Runs one `mix × config` cell against a phase-1 normalization
    /// table. Takes `&self` — a cell mutates no lab state, which is
    /// what lets [`Lab::sweep`] fan cells out across threads while
    /// sharing one `Lab` and one [`NormTable`].
    pub fn run_cell(
        &self,
        mix_idx: usize,
        rob: RobConfig,
        norm: &NormTable,
    ) -> Result<MixRun, SimError> {
        self.run_cell_attempt(mix_idx, rob, norm, 1)
    }

    /// [`Lab::run_cell`] at an explicit attempt number — the retry
    /// layer's entry point. The attempt number only selects the fault
    /// plan (see [`Lab::set_transient_fault`]); the simulation itself
    /// is attempt-oblivious, so a retried cell that no longer faults
    /// is byte-identical to a cell that never faulted.
    fn run_cell_attempt(
        &self,
        mix_idx: usize,
        rob: RobConfig,
        norm: &NormTable,
        attempt: u32,
    ) -> Result<MixRun, SimError> {
        self.run_cell_inner(mix_idx, rob, norm, smtsim_obs::NoopTracer, attempt)
            .map(|(run, _)| run)
    }

    /// [`Lab::run_cell`] with tracing armed: the multithreaded run
    /// collects the full structured event stream (warm-up excluded),
    /// which is folded into episodes and metrics. The [`MixRun`] inside
    /// is identical to the untraced cell's — tracing is observational.
    pub fn run_cell_traced(
        &self,
        mix_idx: usize,
        rob: RobConfig,
        norm: &NormTable,
    ) -> Result<TracedMixRun, SimError> {
        self.run_cell_traced_attempt(mix_idx, rob, norm, 1)
    }

    /// [`Lab::run_cell_traced`] at an explicit attempt number (see
    /// [`Lab::run_cell_attempt`]).
    fn run_cell_traced_attempt(
        &self,
        mix_idx: usize,
        rob: RobConfig,
        norm: &NormTable,
        attempt: u32,
    ) -> Result<TracedMixRun, SimError> {
        let (run, log) = self.run_cell_inner(mix_idx, rob, norm, TraceLog::new(), attempt)?;
        let events = log.into_events();
        let episodes = EpisodeReconstructor::from_events(&events);
        let metrics = MetricsRegistry::from_events(&events);
        Ok(TracedMixRun {
            run,
            events,
            episodes,
            metrics,
        })
    }

    /// Shared body of [`Lab::run_cell`] and [`Lab::run_cell_traced`]:
    /// builds the simulator through [`Simulator::builder`] (bounds →
    /// fault plan → warm-up, tracing armed last), runs the mix and
    /// computes the metrics. Returns the tracer so traced callers can
    /// fold the collected stream.
    fn run_cell_inner<T: Tracer>(
        &self,
        mix_idx: usize,
        rob: RobConfig,
        norm: &NormTable,
        tracer: T,
        attempt: u32,
    ) -> Result<(MixRun, T), SimError> {
        let m = mix(mix_idx);
        let wls: Vec<Arc<Workload>> = m.instantiate(self.seed).into_iter().map(Arc::new).collect();
        let bounds = static_bounds(&wls);
        let mut builder = Simulator::builder(self.machine.clone(), wls, rob.build(), self.seed)
            .dod_bounds(bounds)
            .warmup(self.warmup)
            // Watchdog budgets apply to the measured (multithreaded)
            // cell run only — normalization runs are unmetered because
            // the single-thread cache must never store a timeout (see
            // `norm_table`).
            .run_budget(RunBudget {
                max_cycles: self.cell_cycle_budget,
                wall_ms: self.cell_wall_ms,
                token: self.cancel.clone(),
            })
            .cycle_skip(self.cycle_skip)
            .tracer(tracer);
        if let Some(plan) = self.fault_for_attempt(mix_idx, attempt) {
            builder = builder.fault_plan(plan.clone());
        }
        let mut sim = builder.build()?;
        let run_err = sim
            .try_run(StopCondition::AnyThreadCommitted(self.mt_budget))
            .err();
        let faults = sim.fault_stats();
        if let Some(e) = run_err {
            return Err(e);
        }
        let cycles = sim.cycle();
        let stats = sim.stats().clone();
        let ipc: Vec<f64> = stats.threads.iter().map(|t| t.ipc(cycles)).collect();
        let single_ipc: Vec<f64> = (0..ipc.len())
            .map(|slot| norm.get(mix_idx, slot))
            .collect::<Result<_, _>>()?;
        let weighted: Vec<f64> = ipc
            .iter()
            .zip(&single_ipc)
            .map(|(&mt, &st)| weighted_ipc(mt, st))
            .collect();
        let twolevel = sim
            .allocator()
            .as_any()
            .downcast_ref::<TwoLevelRob>()
            .map(|a| a.stats());
        let run = MixRun {
            mix: m.name.to_string(),
            config: rob.label(),
            ft: fair_throughput(&weighted),
            throughput: ipc.iter().sum(),
            ipc,
            single_ipc,
            weighted,
            stats,
            twolevel,
            faults,
        };
        Ok((run, sim.into_tracer()))
    }

    /// Runs a batch of `mix × config` cells and returns their results
    /// in input order.
    ///
    /// Phase 1 serially precomputes every normalization run the cells
    /// need ([`Lab::norm_table`]); the immutable table is then shared
    /// read-only by phase 2, which fans the cells out across
    /// [`Lab::effective_jobs`] scoped worker threads pulling from a
    /// shared work queue. Each cell is panic-isolated: a panicking
    /// cell yields [`SimError::CellPanic`] — rendered `n/a` by the
    /// figure layer — instead of killing the sweep. Results are merged
    /// by input index, so the output (and every figure rendered from
    /// it) is byte-identical at any job count, including the serial
    /// `jobs = 1` path.
    ///
    /// This is [`Lab::sweep_cells`] stripped down to the classic
    /// result vector; all resilience features (journal, watchdog,
    /// retries) apply.
    pub fn sweep(&mut self, cells: &[SweepCell]) -> Vec<Result<MixRun, SimError>> {
        self.sweep_cells(cells).results()
    }

    /// The resilient sweep: [`Lab::sweep`] returning per-cell
    /// [`CellOutcome`]s and a [`SweepHealth`] summary.
    ///
    /// When a journal is armed ([`Lab::with_journal`] /
    /// `SMTSIM_JOURNAL`), cells already journaled under the current
    /// experiment universe are served from disk without re-running, and
    /// every newly-completed cell is appended durably the moment it
    /// finishes — so a killed sweep, relaunched with the same journal,
    /// resumes after the last completed cell and produces byte-identical
    /// results. Failed cells are never journaled; they re-run (still
    /// deterministically) on resume.
    ///
    /// When retries are armed ([`Lab::with_retries`] /
    /// `SMTSIM_CELL_RETRIES`), transiently-failed cells
    /// ([`SimError::is_transient`]) are re-enqueued for later rounds:
    /// the deterministic analogue of backoff — every first-attempt cell
    /// runs before any retry, and retry order within a round is drawn
    /// from the lab seed via SplitMix64, never from wall-clock
    /// randomness. The outcome vector stays byte-identical at any
    /// `SMTSIM_JOBS`.
    ///
    /// # Panics
    /// Panics if an armed journal cannot be opened or is stale
    /// (version/universe mismatch) — entry points that own a journal
    /// path pre-validate with [`Lab::open_journal`] and map the typed
    /// error to an exit code instead.
    pub fn sweep_cells(&mut self, cells: &[SweepCell]) -> SweepReport {
        let journal = self.ensure_journal();
        let mixes: Vec<usize> = cells.iter().map(|&(m, _)| m).collect();
        let norm = self.norm_table(&mixes);
        let keys: Vec<String> = cells
            .iter()
            .map(|&(m, cfg)| cell_key(m, &cfg.fingerprint()))
            .collect();
        let journaled: Vec<Option<JournalEntry>> = keys
            .iter()
            .map(|k| journal.as_deref().and_then(|j| j.lookup(k)))
            .collect();
        let skip: Vec<bool> = journaled.iter().map(Option::is_some).collect();
        let journal = journal.as_deref();
        let keys = &keys;
        let ran = self.sweep_engine(
            cells,
            &norm,
            &skip,
            &|i, run: &MixRun, attempts| {
                if let Some(j) = journal {
                    if let Err(e) = j.record(&keys[i], run, attempts) {
                        // A dying disk must not kill a healthy sweep:
                        // degrade to non-durable execution (results
                        // unchanged; only resumability is lost).
                        eprintln!("warning: sweep journal append failed ({e}); cell result kept in memory only");
                    }
                }
            },
            &|lab, m, cfg, norm, attempt| lab.run_cell_attempt(m, cfg, norm, attempt),
        );
        let outcomes: Vec<CellOutcome> = journaled
            .into_iter()
            .zip(ran)
            .map(|(hit, ran)| match hit {
                Some(entry) => CellOutcome {
                    result: Ok(entry.run),
                    attempts: entry.attempts,
                    from_journal: true,
                },
                None => {
                    let (result, attempts) = ran.expect("engine ran every non-journaled cell");
                    CellOutcome {
                        result,
                        attempts,
                        from_journal: false,
                    }
                }
            })
            .collect();
        let health = SweepHealth::from_outcomes(&outcomes);
        SweepReport { outcomes, health }
    }

    /// [`Lab::sweep`] with tracing armed on every cell (see
    /// [`Lab::run_cell_traced`]). Same two-phase structure, same
    /// panic isolation, same watchdog and retry layers, same
    /// input-order merge — the traced output is byte-identical at any
    /// job count. Traced sweeps are never journaled (the journal
    /// stores [`MixRun`]s, not event streams).
    pub fn sweep_traced(&mut self, cells: &[SweepCell]) -> Vec<Result<TracedMixRun, SimError>> {
        let mixes: Vec<usize> = cells.iter().map(|&(m, _)| m).collect();
        let norm = self.norm_table(&mixes);
        let skip = vec![false; cells.len()];
        self.sweep_engine(
            cells,
            &norm,
            &skip,
            &|_, _: &TracedMixRun, _| {},
            &|lab, m, cfg, norm, attempt| lab.run_cell_traced_attempt(m, cfg, norm, attempt),
        )
        .into_iter()
        .map(|o| o.expect("no cells are skipped in a traced sweep").0)
        .collect()
    }

    /// The engine under [`Lab::sweep_cells`] and [`Lab::sweep_traced`]:
    /// runs every non-`skip` cell through up to `1 + retries` rounds,
    /// invoking `on_ok` the moment a cell first succeeds (the journal
    /// append hook — called from worker threads, hence `Sync`).
    /// Returns `(final result, attempts)` per cell, `None` for skipped
    /// cells, in input order.
    fn sweep_engine<R: Send>(
        &self,
        cells: &[SweepCell],
        norm: &NormTable,
        skip: &[bool],
        on_ok: &(impl Fn(usize, &R, u32) + Sync),
        run: &(impl Fn(&Lab, usize, RobConfig, &NormTable, u32) -> Result<R, SimError> + Sync),
    ) -> Vec<Option<(Result<R, SimError>, u32)>> {
        let mut results: Vec<Option<(Result<R, SimError>, u32)>> =
            cells.iter().map(|_| None).collect();
        // Round 1 visits pending cells in input order; retry rounds
        // re-enqueue transient failures in a seeded order (deferred
        // behind all first attempts — the deterministic analogue of
        // backoff).
        let mut queue: Vec<usize> = (0..cells.len()).filter(|&i| !skip[i]).collect();
        let max_attempts = self.retries.saturating_add(1);
        for attempt in 1..=max_attempts {
            if queue.is_empty() {
                break;
            }
            if attempt > 1 {
                queue.sort_by_key(|&i| {
                    (
                        splitmix64(self.seed ^ (u64::from(attempt) << 32) ^ i as u64),
                        i,
                    )
                });
            }
            let round = self.run_round(&queue, cells, norm, attempt, run);
            let mut still = Vec::new();
            for (i, res) in round {
                if let Ok(r) = &res {
                    on_ok(i, r, attempt);
                } else if res.as_ref().err().is_some_and(SimError::is_transient)
                    && attempt < max_attempts
                {
                    still.push(i);
                }
                results[i] = Some((res, attempt));
            }
            still.sort_unstable();
            queue = still;
        }
        results
    }

    /// One engine round: fans `queue` (cell indices) out across
    /// [`Lab::effective_jobs`] scoped workers, panic-isolating each
    /// cell. Returns `(index, result)` pairs sorted by index.
    fn run_round<R: Send>(
        &self,
        queue: &[usize],
        cells: &[SweepCell],
        norm: &NormTable,
        attempt: u32,
        run: &(impl Fn(&Lab, usize, RobConfig, &NormTable, u32) -> Result<R, SimError> + Sync),
    ) -> Vec<(usize, Result<R, SimError>)> {
        let jobs = self.effective_jobs().min(queue.len().max(1));
        let this: &Lab = self;
        if jobs <= 1 {
            return queue
                .iter()
                .map(|&i| {
                    let (m, cfg) = cells[i];
                    (
                        i,
                        catch_cell(|| run(this, m, cfg, norm, attempt)).and_then(|r| r),
                    )
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let next = &next;
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let qi = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&i) = queue.get(qi) else {
                                break;
                            };
                            let (m, cfg) = cells[i];
                            out.push((
                                i,
                                catch_cell(|| run(this, m, cfg, norm, attempt)).and_then(|r| r),
                            ));
                        }
                        out
                    })
                })
                .collect();
            let mut merged = Vec::with_capacity(queue.len());
            for h in handles {
                merged.extend(h.join().expect("workers catch cell panics"));
            }
            merged.sort_by_key(|&(i, _)| i);
            merged
        })
    }

    /// True when any resilience feature — journal, watchdog budget,
    /// retries, transient faults — is configured. The figure layer
    /// attaches the [`SweepHealth`] footer only in this case, so
    /// committed goldens produced by a plain lab stay byte-identical.
    pub fn resilience_active(&self) -> bool {
        self.journal_path.is_some()
            || self.cell_cycle_budget.is_some()
            || self.cell_wall_ms.is_some()
            || self.retries > 0
            || !self.transient_faults.is_empty()
    }

    /// The experiment-universe fingerprint the journal is keyed by:
    /// every lab input that can change a cell's bytes (seed, budgets,
    /// warm-up, normalization universe, machine, fault plans, the
    /// resilience knobs themselves, and the driving spec's content
    /// fingerprint) — but *not* the job count, which only changes
    /// scheduling. A journal written under one fingerprint is rejected
    /// under any other (never silently reused).
    pub fn journal_universe(&self) -> String {
        journal::fingerprint_str(&format!(
            "v{} seed={} mt={} st={} warmup={} norm={} machine={:?} global_fault={:?} \
             mix_faults={:?} transient_faults={:?} cell_cycles={:?} cell_wall_ms={:?} \
             retries={} spec={:?}",
            journal::JOURNAL_VERSION,
            self.seed,
            self.mt_budget,
            self.st_budget,
            self.warmup,
            self.norm.fingerprint(),
            self.machine,
            self.global_fault,
            self.mix_faults,
            self.transient_faults,
            self.cell_cycle_budget,
            self.cell_wall_ms,
            self.retries,
            self.spec_fingerprint,
        ))
    }

    /// Opens (or re-opens) the journal at [`Lab::journal_path`] under
    /// the current universe fingerprint, returning how many completed
    /// cells it already holds. `Ok(0)` when no path is armed. This is
    /// the fallible entry point: bins and tests call it up front and
    /// map [`JournalError`] to a diagnostic + exit code, so the panic
    /// inside [`Lab::sweep_cells`] is unreachable for them.
    pub fn open_journal(&mut self) -> Result<usize, JournalError> {
        self.journal = None;
        match self.journal_path.clone() {
            None => Ok(0),
            Some(path) => {
                let j = Journal::open(&path, &self.journal_universe())?;
                let n = j.len();
                self.journal = Some(Arc::new(j));
                Ok(n)
            }
        }
    }

    /// Installs an already-open shared [`Journal`] handle instead of
    /// re-opening the file from [`Lab::journal_path`]. The serve
    /// daemon holds one handle per experiment universe and shares it
    /// across concurrent requests, so appends from every worker and
    /// render pass serialize through a single file handle (and later
    /// lookups observe earlier appends). The journal must have been
    /// opened under the lab's *current* universe fingerprint; anything
    /// else is a typed [`JournalError::UniverseMismatch`]. Call after
    /// all `with_*` builder calls — any subsequent state change drops
    /// the handle and the lab would re-open the path itself.
    pub fn adopt_journal(&mut self, journal: Arc<Journal>) -> Result<(), JournalError> {
        let expected = self.journal_universe();
        if journal.universe() != expected {
            return Err(JournalError::UniverseMismatch {
                expected,
                found: journal.universe().to_string(),
            });
        }
        self.journal_path = Some(journal.path().to_path_buf());
        self.journal = Some(journal);
        Ok(())
    }

    /// The open journal for the *current* universe, if a path is
    /// armed. Re-opens when no journal is open yet or the open one was
    /// created under a different fingerprint (possible via direct
    /// `pub` field mutation, which bypasses `change_state`).
    fn ensure_journal(&mut self) -> Option<Arc<Journal>> {
        let stale = match (&self.journal, &self.journal_path) {
            (None, None) => false,
            (Some(j), Some(_)) => j.universe() != self.journal_universe(),
            _ => true,
        };
        if stale {
            if let Err(e) = self.open_journal() {
                panic!("sweep journal unusable: {e}");
            }
        }
        self.journal.clone()
    }

    /// Crash-simulation entry point for resume tests: runs the sweep
    /// serially with the journal armed and abandons it after `k` cells
    /// have been *executed* (journal hits don't count), as if the
    /// process had been killed at that point. Returns the number of
    /// cells executed. Requires an armed journal path.
    pub fn sweep_killed_after(
        &mut self,
        cells: &[SweepCell],
        k: usize,
    ) -> Result<usize, JournalError> {
        if self.journal_path.is_none() {
            return Err(JournalError::Io {
                path: PathBuf::new(),
                detail: "sweep_killed_after requires a journal path".into(),
            });
        }
        self.open_journal()?;
        let journal = self
            .journal
            .clone()
            .expect("open_journal armed the journal");
        let mixes: Vec<usize> = cells.iter().map(|&(m, _)| m).collect();
        let norm = self.norm_table(&mixes);
        let mut executed = 0usize;
        for &(m, cfg) in cells {
            if executed >= k {
                break;
            }
            let key = cell_key(m, &cfg.fingerprint());
            if journal.lookup(&key).is_some() {
                continue;
            }
            let (res, attempts) = self.run_cell_with_retries(m, cfg, &norm);
            if let Ok(run) = &res {
                journal.record(&key, run, attempts)?;
            }
            executed += 1;
        }
        Ok(executed)
    }

    /// One cell through the full attempt loop — the serial form of the
    /// engine's retry rounds. Per-cell results are identical to the
    /// round-based engine's because cells are independent and attempt
    /// progression is deterministic; only inter-cell scheduling
    /// differs, which the input-order merge already erases. Public for
    /// embedding schedulers (the serve daemon's worker pool) that
    /// dispatch cells themselves but must keep the panic-isolation,
    /// watchdog and retry semantics. Returns the result and the number
    /// of attempts consumed. A cancelled lab ([`Lab::cancel`]) stops
    /// retrying immediately — retrying a request the client abandoned
    /// would only burn worker time.
    pub fn run_cell_with_retries(
        &self,
        m: usize,
        cfg: RobConfig,
        norm: &NormTable,
    ) -> (Result<MixRun, SimError>, u32) {
        let max_attempts = self.retries.saturating_add(1);
        let mut attempt = 1;
        loop {
            let res = catch_cell(|| self.run_cell_attempt(m, cfg, norm, attempt)).and_then(|r| r);
            let transient = res.as_ref().err().is_some_and(SimError::is_transient);
            let cancelled = self.cancel.as_ref().is_some_and(CancelToken::is_cancelled);
            if res.is_ok() || !transient || cancelled || attempt >= max_attempts {
                return (res, attempt);
            }
            attempt += 1;
        }
    }

    /// Runs `mix_idx` under `rob` and computes all metrics.
    ///
    /// # Panics
    /// Panics on any [`SimError`]; use [`Lab::try_run_mix`] in sweeps
    /// that must survive a poisoned cell.
    pub fn run_mix(&mut self, mix_idx: usize, rob: RobConfig) -> MixRun {
        match self.try_run_mix(mix_idx, rob) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Lab::run_mix`]. The multithreaded run uses
    /// the fault plan installed via [`Lab::set_fault`] (if any); errors
    /// from either the faulted run or the normalization runs are
    /// returned instead of panicking, so a sweep can record the cell as
    /// failed and continue.
    pub fn try_run_mix(&mut self, mix_idx: usize, rob: RobConfig) -> Result<MixRun, SimError> {
        let norm = self.norm_table(&[mix_idx]);
        self.run_cell(mix_idx, rob, &norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lab() -> Lab {
        Lab::new(7).with_budgets(8_000, 8_000)
    }

    #[test]
    fn single_ipc_is_memoized_and_positive() {
        let mut lab = small_lab();
        let a = lab.single_ipc(1, 0, RobConfig::Baseline(32));
        let b = lab.single_ipc(1, 0, RobConfig::Baseline(32));
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn run_mix_produces_consistent_metrics() {
        let mut lab = small_lab();
        let r = lab.run_mix(1, RobConfig::Baseline(32));
        assert_eq!(r.config, "Baseline_32");
        assert_eq!(r.ipc.len(), 4);
        assert!(r.ft > 0.0 && r.ft < 1.5, "ft = {}", r.ft);
        for (w, (mt, st)) in r.weighted.iter().zip(r.ipc.iter().zip(&r.single_ipc)) {
            assert!((w - mt / st).abs() < 1e-9);
            // Sharing a core can't speed a thread up beyond small
            // measurement noise.
            assert!(*w < 1.3, "weighted {w}");
        }
        assert!(r.twolevel.is_none());
    }

    #[test]
    fn two_level_run_reports_allocator_stats() {
        let mut lab = small_lab();
        let r = lab.run_mix(1, RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)));
        assert_eq!(r.config, "2-Level Relaxed R-ROB15");
        let tl = r.twolevel.expect("two-level stats");
        assert!(tl.allocations > 0, "memory-bound mix must allocate L2");
    }

    #[test]
    fn labels() {
        assert_eq!(RobConfig::Baseline(128).label(), "Baseline_128");
        assert_eq!(
            RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)).label(),
            "2-Level P-ROB5"
        );
    }

    #[test]
    fn try_run_mix_surfaces_deadlock_as_typed_error() {
        let mut lab = small_lab();
        lab.machine.deadlock_cycles = 3_000;
        let mut plan = FaultPlan::new(5);
        plan.drop_fill = 1; // every L2 fill lost: the first miss starves
        lab.set_fault(Some(1), plan);
        let err = lab
            .try_run_mix(1, RobConfig::Baseline(32))
            .expect_err("dropped fills must deadlock");
        match err {
            SimError::Deadlock { snapshot } => {
                assert_eq!(snapshot.deadlock_cycles, 3_000);
                assert!(!snapshot.threads.is_empty());
            }
            other => panic!("expected deadlock, got {other}"),
        }
        // The plan is scoped to mix 1; other mixes stay healthy.
        assert!(lab.try_run_mix(2, RobConfig::Baseline(32)).is_ok());
    }

    #[test]
    fn delay_faults_are_absorbed_and_counted() {
        let mut lab = small_lab();
        let mut plan = FaultPlan::new(9);
        plan.delay_fill = 2;
        plan.delay_cycles = 64;
        lab.set_fault(None, plan);
        let r = lab
            .try_run_mix(1, RobConfig::Baseline(32))
            .expect("slow DRAM is not a failure");
        assert!(r.faults.delayed_fills > 0, "plan never fired");
        lab.clear_faults();
        assert!(lab.fault_for(1).is_none());
    }

    #[test]
    fn cache_invalidated_by_st_budget_change() {
        let mut lab = small_lab();
        let a = lab.single_ipc(1, 0, RobConfig::Baseline(32));
        assert_eq!(lab.cached_norm_runs(), 1);
        // Regression: this used to hit the stale 8k-budget entry and
        // silently serve it for the 2k-budget request.
        lab.st_budget = 2_000;
        let b = lab.single_ipc(1, 0, RobConfig::Baseline(32));
        assert_eq!(lab.cached_norm_runs(), 2, "budget change must miss");
        assert_ne!(a, b, "stale normalization IPC served across budgets");
        // Restoring the budget serves the originally measured value.
        lab.st_budget = 8_000;
        assert_eq!(lab.single_ipc(1, 0, RobConfig::Baseline(32)), a);
        assert_eq!(lab.cached_norm_runs(), 2);
    }

    #[test]
    fn cache_invalidated_by_seed_warmup_and_machine_changes() {
        let mut lab = small_lab();
        let base = lab.single_ipc(1, 1, RobConfig::Baseline(32));
        lab.seed = 8;
        let _ = lab.single_ipc(1, 1, RobConfig::Baseline(32));
        assert_eq!(lab.cached_norm_runs(), 2, "seed change must miss");
        lab.warmup = 4_000;
        let _ = lab.single_ipc(1, 1, RobConfig::Baseline(32));
        assert_eq!(lab.cached_norm_runs(), 3, "warm-up change must miss");
        lab.machine.mem.first_chunk += 400;
        let slow = lab.single_ipc(1, 1, RobConfig::Baseline(32));
        assert_eq!(lab.cached_norm_runs(), 4, "machine change must miss");
        // Slot 1 of Mix 1 is art (memory-bound): much slower DRAM must
        // change its alone-IPC, which the stale cache used to hide.
        assert_ne!(base, slow);
    }

    #[test]
    fn cache_distinguishes_configs_with_equal_labels() {
        let mut lab = small_lab();
        let a_cfg = TwoLevelConfig::r_rob(16);
        let mut b_cfg = a_cfg;
        b_cfg.l2_entries = 32;
        let a = RobConfig::TwoLevel(a_cfg);
        let b = RobConfig::TwoLevel(b_cfg);
        // Same display name, different machine: the old label-based
        // key collapsed these into one cache entry.
        assert_eq!(a.label(), b.label());
        assert_ne!(a.fingerprint(), b.fingerprint());
        let _ = lab.single_ipc(1, 1, a);
        let _ = lab.single_ipc(1, 1, b);
        assert_eq!(
            lab.cached_norm_runs(),
            2,
            "equal labels used to collide into one normalization entry"
        );
    }

    #[test]
    fn sweep_is_identical_serial_parallel_and_to_the_direct_api() {
        let cells: Vec<SweepCell> = vec![
            (1, RobConfig::Baseline(32)),
            (2, RobConfig::Baseline(32)),
            (1, RobConfig::TwoLevel(TwoLevelConfig::r_rob(16))),
            (9, RobConfig::Baseline(128)),
        ];
        let run = |jobs: usize| {
            let mut lab = small_lab();
            lab.jobs = Some(jobs);
            format!("{:?}", lab.sweep(&cells))
        };
        let serial = run(1);
        assert_eq!(serial, run(4), "job count changed sweep results");
        let mut lab = small_lab();
        let direct: Vec<Result<MixRun, SimError>> =
            cells.iter().map(|&(m, c)| lab.try_run_mix(m, c)).collect();
        assert_eq!(serial, format!("{direct:?}"));
    }

    #[test]
    fn sweep_isolates_panicking_cells() {
        let mut lab = small_lab();
        lab.jobs = Some(2);
        // Mix 99 does not exist: instantiating it panics. The sweep
        // must convert that to a typed per-cell error, not die.
        let rs = lab.sweep(&[(1, RobConfig::Baseline(32)), (99, RobConfig::Baseline(32))]);
        assert!(rs[0].is_ok(), "healthy cell poisoned: {:?}", rs[0]);
        match &rs[1] {
            Err(SimError::CellPanic { reason }) => {
                assert!(reason.contains("out of range"), "{reason}");
            }
            other => panic!("expected CellPanic, got {other:?}"),
        }
    }

    #[test]
    fn sweep_traced_isolates_panicking_cells() {
        let mut lab = small_lab();
        lab.jobs = Some(2);
        // Same poisoned-cell shape as the untraced sweep test, through
        // the traced engine: the panic must become a typed per-cell
        // error that downstream renderers show as `n/a`, and the
        // healthy cell's metrics must be exactly the untraced run's.
        let rs = lab.sweep_traced(&[(1, RobConfig::Baseline(32)), (99, RobConfig::Baseline(32))]);
        let traced = rs[0].as_ref().expect("healthy cell poisoned");
        assert!(!traced.events.is_empty(), "tracing was armed");
        assert_eq!(
            traced.episodes,
            smtsim_obs::EpisodeReconstructor::from_events(&traced.events),
            "episodes are the standard reduction of the cell's own stream"
        );
        match &rs[1] {
            Err(e @ SimError::CellPanic { reason }) => {
                assert!(reason.contains("out of range"), "{reason}");
                // The stable kind string the trace bin interpolates
                // into its `n/a (...)` row for a failed cell.
                assert_eq!(e.kind(), "panic");
            }
            other => panic!("expected CellPanic, got {other:?}"),
        }
        let untraced = lab.sweep(&[(1, RobConfig::Baseline(32))]);
        assert_eq!(
            format!("{:?}", traced.run),
            format!("{:?}", untraced[0].as_ref().expect("healthy cell")),
            "tracing perturbed the measured run"
        );
    }

    #[test]
    fn sweep_traced_is_identical_serial_and_parallel() {
        let cells: Vec<SweepCell> = vec![
            (1, RobConfig::Baseline(32)),
            (99, RobConfig::Baseline(32)),
            (2, RobConfig::TwoLevel(TwoLevelConfig::r_rob(16))),
        ];
        let run = |jobs: usize| {
            let mut lab = small_lab();
            lab.jobs = Some(jobs);
            format!("{:?}", lab.sweep_traced(&cells))
        };
        assert_eq!(run(1), run(4), "job count changed traced sweep results");
    }

    #[test]
    fn norm_table_covers_requested_mixes_and_reports_missing() {
        let mut lab = small_lab();
        let t = lab.norm_table(&[2, 1, 1]);
        assert_eq!(t.len(), 8, "4 slots per mix, duplicates collapsed");
        assert!(!t.is_empty());
        assert!(t.get(1, 3).is_ok());
        let missing = t.get(5, 0).expect_err("mix 5 was not requested");
        assert_eq!(missing.kind(), "invalid-config");
    }

    #[test]
    fn deterministic_runs() {
        let ft = || {
            let mut lab = small_lab();
            lab.run_mix(2, RobConfig::Baseline(32)).ft
        };
        assert_eq!(ft(), ft());
    }

    #[test]
    fn sweep_health_is_a_pure_fold_over_outcomes() {
        let ok = |attempts, from_journal| CellOutcome {
            result: Ok(MixRun {
                mix: "m".into(),
                config: "c".into(),
                ipc: vec![],
                single_ipc: vec![],
                weighted: vec![],
                ft: 0.0,
                throughput: 0.0,
                stats: SimStats::new(0),
                twolevel: None,
                faults: FaultStats::default(),
            }),
            attempts,
            from_journal,
        };
        let timeout = CellOutcome {
            result: Err(SimError::CellTimeout {
                cycle: 9,
                detail: "x".into(),
            }),
            attempts: 3,
            from_journal: false,
        };
        let failed = CellOutcome {
            result: Err(SimError::InvalidConfig {
                reason: "bad".into(),
            }),
            attempts: 1,
            from_journal: false,
        };
        let outcomes = [ok(1, false), ok(2, true), timeout, failed];
        let h = SweepHealth::from_outcomes(&outcomes);
        assert_eq!(
            h,
            SweepHealth {
                ok: 2,
                retried: 1,
                timed_out: 1,
                failed: 1,
                extra_attempts: 3,
            }
        );
        assert_eq!(h.total(), 4);
        assert!(!h.all_ok());
        assert_eq!(
            h.summary_line(),
            "sweep health: 2 ok (1 retried), 1 timed out, 1 failed"
        );
        let mut reg = MetricsRegistry::new();
        h.record_metrics(&mut reg);
        assert_eq!(reg.counter("sweep.cells_ok"), 2);
        assert_eq!(reg.counter("sweep.cells_retried"), 1);
        assert_eq!(reg.counter("sweep.cells_timed_out"), 1);
        assert_eq!(reg.counter("sweep.cells_failed"), 1);
        assert_eq!(reg.counter("sweep.retry_attempts"), 3);
    }

    #[test]
    fn transient_fault_is_recovered_by_retry_and_reported() {
        let cells = [
            (1usize, RobConfig::Baseline(32)),
            (2usize, RobConfig::Baseline(32)),
        ];
        // Reference: the same lab with no fault and no retries.
        let clean = small_lab().sweep(&cells);
        // Fault plan that deadlocks mix 1 — but only on attempt 1.
        let mut lab = small_lab().with_retries(2);
        lab.machine.deadlock_cycles = 3_000;
        let mut plan = FaultPlan::new(5);
        plan.drop_fill = 1;
        lab.set_transient_fault(1, plan, 1);
        let mut clean_faulty_machine = small_lab();
        clean_faulty_machine.machine.deadlock_cycles = 3_000;
        let clean = {
            // Deadlock-cycle setting changes the machine, so rebuild
            // the reference under the identical machine config.
            let _ = clean;
            clean_faulty_machine.sweep(&cells)
        };
        let report = lab.sweep_cells(&cells);
        assert_eq!(
            report.health,
            SweepHealth {
                ok: 2,
                retried: 1,
                timed_out: 0,
                failed: 0,
                extra_attempts: 1,
            }
        );
        assert_eq!(report.outcomes[0].attempts, 2, "mix 1 needed a retry");
        assert_eq!(report.outcomes[1].attempts, 1);
        // The recovered cell is byte-identical to a never-faulted run.
        let healed = report.results();
        for (a, b) in healed.iter().zip(&clean) {
            assert_eq!(
                format!("{:?}", a.as_ref().unwrap()),
                format!("{:?}", b.as_ref().unwrap())
            );
        }
    }

    #[test]
    fn persistent_transient_fault_exhausts_retries() {
        // A "transient" plan active through every attempt never heals:
        // retries are spent, the final result is the typed error.
        let mut lab = small_lab().with_retries(1);
        lab.machine.deadlock_cycles = 3_000;
        let mut plan = FaultPlan::new(5);
        plan.drop_fill = 1;
        lab.set_transient_fault(1, plan, u32::MAX);
        let report = lab.sweep_cells(&[(1, RobConfig::Baseline(32))]);
        assert_eq!(report.outcomes[0].attempts, 2, "both attempts spent");
        assert!(matches!(
            report.outcomes[0].result,
            Err(SimError::Deadlock { .. })
        ));
        assert_eq!(report.health.failed, 1);
        assert_eq!(report.health.extra_attempts, 1);
    }

    #[test]
    fn cycle_budget_renders_cells_as_timeouts_without_poisoning_others() {
        let mut lab = small_lab().with_cell_cycle_budget(Some(500));
        assert!(lab.resilience_active());
        let report = lab.sweep_cells(&[(1, RobConfig::Baseline(32)), (2, RobConfig::Baseline(32))]);
        // 8k committed instructions cannot fit in 500 cycles: every
        // cell times out, deterministically at cycle 500.
        assert_eq!(report.health.timed_out, 2);
        for o in &report.outcomes {
            match &o.result {
                Err(SimError::CellTimeout { cycle, .. }) => assert_eq!(*cycle, 500),
                other => panic!("expected timeout, got {other:?}"),
            }
        }
        // Timeouts are transient: with retries they are re-attempted
        // (and still time out — the budget is part of the universe).
        let mut lab = small_lab()
            .with_cell_cycle_budget(Some(500))
            .with_retries(1);
        let report = lab.sweep_cells(&[(1, RobConfig::Baseline(32))]);
        assert_eq!(report.outcomes[0].attempts, 2);
        assert_eq!(report.health.timed_out, 1);
    }

    #[test]
    fn resilient_sweep_with_idle_knobs_matches_plain_sweep() {
        let cells: Vec<SweepCell> = vec![
            (1, RobConfig::Baseline(32)),
            (1, RobConfig::TwoLevel(TwoLevelConfig::r_rob(16))),
            (2, RobConfig::Baseline(32)),
        ];
        let plain = small_lab().sweep(&cells);
        // Generous budgets and armed retries that never fire must not
        // change a single byte of the results.
        let mut lab = small_lab()
            .with_cell_cycle_budget(Some(u64::MAX))
            .with_cell_wall_ms(Some(3_600_000))
            .with_retries(3);
        let resilient = lab.sweep_cells(&cells);
        assert_eq!(resilient.health.ok, 3);
        assert_eq!(resilient.health.retried, 0);
        assert_eq!(resilient.journal_hits(), 0);
        assert_eq!(format!("{:?}", resilient.results()), format!("{plain:?}"));
    }

    #[test]
    fn journal_skips_completed_cells_and_survives_universe_changes() {
        let dir = std::env::temp_dir().join(format!("smtsim-journal-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);
        let cells = [
            (1usize, RobConfig::Baseline(32)),
            (2usize, RobConfig::Baseline(32)),
        ];
        let plain = small_lab().sweep(&cells);
        let mut lab = small_lab().with_journal(&path);
        assert_eq!(lab.open_journal().unwrap(), 0, "fresh journal is empty");
        let first = lab.sweep_cells(&cells);
        assert_eq!(first.journal_hits(), 0);
        // Second sweep over the same universe: both cells come from
        // the journal, and the bytes are identical to a plain sweep.
        let second = lab.sweep_cells(&cells);
        assert_eq!(second.journal_hits(), 2);
        assert_eq!(second.health, first.health);
        assert_eq!(format!("{:?}", second.results()), format!("{plain:?}"));
        // A state change moves the lab to a new universe: the stale
        // journal must be rejected, not silently reused.
        let mut moved = small_lab().with_budgets(4_000, 4_000).with_journal(&path);
        match moved.open_journal() {
            Err(JournalError::UniverseMismatch { expected, found }) => {
                assert_ne!(expected, found);
            }
            other => panic!("stale journal accepted: {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
