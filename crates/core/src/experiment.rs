//! Experiment harness: runs Table 2 mixes under ROB configurations and
//! computes the paper's metrics.
//!
//! The [`Lab`] memoizes the single-threaded normalization runs (one per
//! `(mix, thread-slot)`) so sweeping many ROB configurations — as every
//! figure does — pays the normalization cost once.

use crate::metrics::{fair_throughput, weighted_ipc};
use crate::twolevel::{TwoLevelConfig, TwoLevelRob, TwoLevelStats};
use smtsim_analysis::{DodAnalysis, L1_WINDOW};
use smtsim_pipeline::{
    DodBounds, FaultPlan, FaultStats, FixedRob, MachineConfig, RobAllocator, SimError, SimStats,
    Simulator, StopCondition,
};
use smtsim_workload::{mix, Workload};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Static per-load DoD bound tables for a set of workloads, one table
/// per hardware thread. The bounds come from the interprocedural
/// dependence analysis (`smtsim-analysis`) over the same first-level
/// window the hardware counter scans; the simulator cross-checks its
/// exact dependent count against them at every L2 fill.
fn static_bounds(wls: &[Arc<Workload>]) -> Vec<DodBounds> {
    wls.iter()
        .map(|w| DodBounds::new(DodAnalysis::compute(&w.program, L1_WINDOW).max_map()))
        .collect()
}

/// A ROB configuration under test.
#[derive(Clone, Copy, Debug)]
pub enum RobConfig {
    /// Private fixed per-thread ROBs (`Baseline_32`, `Baseline_128`).
    Baseline(usize),
    /// A two-level scheme.
    TwoLevel(TwoLevelConfig),
}

impl RobConfig {
    /// Builds the allocator.
    pub fn build(&self) -> Box<dyn RobAllocator> {
        match *self {
            RobConfig::Baseline(n) => Box::new(FixedRob::new(n)),
            RobConfig::TwoLevel(cfg) => Box::new(TwoLevelRob::new(cfg)),
        }
    }

    /// Display label (matches the paper's legends).
    pub fn label(&self) -> String {
        self.build().name()
    }
}

/// Result of one mix × configuration run.
#[derive(Clone, Debug)]
pub struct MixRun {
    /// "Mix 1" .. "Mix 11".
    pub mix: String,
    /// Configuration label.
    pub config: String,
    /// Fair throughput (harmonic mean of weighted IPCs).
    pub ft: f64,
    /// Raw throughput (sum of IPCs).
    pub throughput: f64,
    /// Per-thread multithreaded IPC.
    pub ipc: Vec<f64>,
    /// Per-thread single-threaded (alone) IPC used for normalization.
    pub single_ipc: Vec<f64>,
    /// Per-thread weighted IPC.
    pub weighted: Vec<f64>,
    /// Full machine statistics.
    pub stats: SimStats,
    /// Two-level allocator statistics, when applicable.
    pub twolevel: Option<TwoLevelStats>,
    /// Faults actually injected during the multithreaded run (all zero
    /// when no [`FaultPlan`] was installed for the mix).
    pub faults: FaultStats,
}

/// Experiment driver with memoized normalization runs.
pub struct Lab {
    /// The multithreaded machine (defaults to Table 1).
    pub machine: MachineConfig,
    /// Workload-generation seed.
    pub seed: u64,
    /// Commit target for multithreaded runs (the run stops when any
    /// thread reaches it, as in the paper).
    pub mt_budget: u64,
    /// Commit target for single-threaded normalization runs.
    pub st_budget: u64,
    /// Functional warm-up instructions per thread before timed
    /// simulation (caches and predictors; see `Simulator::warmup`).
    pub warmup: u64,
    /// Configuration of the reference machine used for the
    /// single-threaded normalization runs. Weighted IPCs of *every*
    /// configuration are normalized against the same reference
    /// (Baseline_32 alone), so FT values are directly comparable across
    /// the paper's bar charts.
    pub norm: RobConfig,
    single_cache: BTreeMap<(usize, usize, String), f64>,
    /// Fault plan applied to every multithreaded run (see
    /// [`Lab::set_fault`]).
    global_fault: Option<FaultPlan>,
    /// Per-mix fault plans; these take precedence over `global_fault`.
    mix_faults: BTreeMap<usize, FaultPlan>,
}

impl Lab {
    /// A lab over the paper's Table 1 machine with laptop-scale
    /// budgets (see EXPERIMENTS.md for the budget used per figure).
    pub fn new(seed: u64) -> Self {
        Lab {
            machine: MachineConfig::icpp08(),
            seed,
            mt_budget: 60_000,
            st_budget: 60_000,
            warmup: 60_000,
            norm: RobConfig::Baseline(32),
            single_cache: BTreeMap::new(),
            global_fault: None,
            mix_faults: BTreeMap::new(),
        }
    }

    /// Overrides the commit budgets.
    pub fn with_budgets(mut self, mt: u64, st: u64) -> Self {
        self.mt_budget = mt;
        self.st_budget = st;
        self
    }

    /// Installs a fault plan for multithreaded runs: `mix = None` sets a
    /// lab-wide plan, `mix = Some(i)` targets one mix (and overrides the
    /// lab-wide plan for it). Single-threaded normalization runs are
    /// never faulted — they define the healthy reference every weighted
    /// IPC is measured against.
    pub fn set_fault(&mut self, mix: Option<usize>, plan: FaultPlan) {
        match mix {
            None => self.global_fault = Some(plan),
            Some(i) => {
                self.mix_faults.insert(i, plan);
            }
        }
    }

    /// Removes all installed fault plans.
    pub fn clear_faults(&mut self) {
        self.global_fault = None;
        self.mix_faults.clear();
    }

    /// The plan a multithreaded run of `mix_idx` would use, if any.
    pub fn fault_for(&self, mix_idx: usize) -> Option<&FaultPlan> {
        self.mix_faults.get(&mix_idx).or(self.global_fault.as_ref())
    }

    /// Single-threaded IPC of `slot` in `mix_idx` under `rob` — the
    /// thread running *alone* on that machine (memoized). `run_mix`
    /// always normalizes with [`Lab::norm`]; this method is public so
    /// studies can also compute per-configuration baselines.
    pub fn single_ipc(&mut self, mix_idx: usize, slot: usize, rob: RobConfig) -> f64 {
        match self.try_single_ipc(mix_idx, slot, rob) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Lab::single_ipc`]: configuration errors,
    /// deadlocks and invariant violations come back as [`SimError`]
    /// instead of aborting the sweep.
    pub fn try_single_ipc(
        &mut self,
        mix_idx: usize,
        slot: usize,
        rob: RobConfig,
    ) -> Result<f64, SimError> {
        let key = (mix_idx, slot, rob.label());
        if let Some(&v) = self.single_cache.get(&key) {
            return Ok(v);
        }
        let wl = Arc::new(mix(mix_idx).instantiate_single(slot, self.seed));
        let bounds = static_bounds(std::slice::from_ref(&wl));
        let mut cfg = self.machine.clone();
        cfg.num_threads = 1;
        cfg.fetch_threads = 1;
        let mut sim = Simulator::try_new(cfg, vec![wl], rob.build(), self.seed)?;
        sim.set_dod_bounds(bounds);
        sim.warmup(self.warmup);
        sim.try_run(StopCondition::AnyThreadCommitted(self.st_budget))?;
        let ipc = sim.stats().threads[0].ipc(sim.cycle());
        self.single_cache.insert(key, ipc);
        Ok(ipc)
    }

    /// Runs `mix_idx` under `rob` and computes all metrics.
    ///
    /// # Panics
    /// Panics on any [`SimError`]; use [`Lab::try_run_mix`] in sweeps
    /// that must survive a poisoned cell.
    pub fn run_mix(&mut self, mix_idx: usize, rob: RobConfig) -> MixRun {
        match self.try_run_mix(mix_idx, rob) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Lab::run_mix`]. The multithreaded run uses
    /// the fault plan installed via [`Lab::set_fault`] (if any); errors
    /// from either the faulted run or the normalization runs are
    /// returned instead of panicking, so a sweep can record the cell as
    /// failed and continue.
    pub fn try_run_mix(&mut self, mix_idx: usize, rob: RobConfig) -> Result<MixRun, SimError> {
        let m = mix(mix_idx);
        let wls: Vec<Arc<Workload>> = m.instantiate(self.seed).into_iter().map(Arc::new).collect();
        let bounds = static_bounds(&wls);
        let mut sim = Simulator::try_new(self.machine.clone(), wls, rob.build(), self.seed)?;
        sim.set_dod_bounds(bounds);
        if let Some(plan) = self.fault_for(mix_idx) {
            sim.set_fault_plan(plan.clone());
        }
        sim.warmup(self.warmup);
        let run_err = sim
            .try_run(StopCondition::AnyThreadCommitted(self.mt_budget))
            .err();
        let faults = sim.fault_stats();
        if let Some(e) = run_err {
            return Err(e);
        }
        let cycles = sim.cycle();
        let stats = sim.stats().clone();
        let ipc: Vec<f64> = stats.threads.iter().map(|t| t.ipc(cycles)).collect();
        let norm = self.norm;
        let single_ipc: Vec<f64> = (0..ipc.len())
            .map(|slot| self.try_single_ipc(mix_idx, slot, norm))
            .collect::<Result<_, _>>()?;
        let weighted: Vec<f64> = ipc
            .iter()
            .zip(&single_ipc)
            .map(|(&mt, &st)| weighted_ipc(mt, st))
            .collect();
        let twolevel = sim
            .allocator()
            .as_any()
            .downcast_ref::<TwoLevelRob>()
            .map(|a| a.stats());
        Ok(MixRun {
            mix: m.name.to_string(),
            config: rob.label(),
            ft: fair_throughput(&weighted),
            throughput: ipc.iter().sum(),
            ipc,
            single_ipc,
            weighted,
            stats,
            twolevel,
            faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lab() -> Lab {
        Lab::new(7).with_budgets(8_000, 8_000)
    }

    #[test]
    fn single_ipc_is_memoized_and_positive() {
        let mut lab = small_lab();
        let a = lab.single_ipc(1, 0, RobConfig::Baseline(32));
        let b = lab.single_ipc(1, 0, RobConfig::Baseline(32));
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn run_mix_produces_consistent_metrics() {
        let mut lab = small_lab();
        let r = lab.run_mix(1, RobConfig::Baseline(32));
        assert_eq!(r.config, "Baseline_32");
        assert_eq!(r.ipc.len(), 4);
        assert!(r.ft > 0.0 && r.ft < 1.5, "ft = {}", r.ft);
        for (w, (mt, st)) in r.weighted.iter().zip(r.ipc.iter().zip(&r.single_ipc)) {
            assert!((w - mt / st).abs() < 1e-9);
            // Sharing a core can't speed a thread up beyond small
            // measurement noise.
            assert!(*w < 1.3, "weighted {w}");
        }
        assert!(r.twolevel.is_none());
    }

    #[test]
    fn two_level_run_reports_allocator_stats() {
        let mut lab = small_lab();
        let r = lab.run_mix(1, RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)));
        assert_eq!(r.config, "2-Level Relaxed R-ROB15");
        let tl = r.twolevel.expect("two-level stats");
        assert!(tl.allocations > 0, "memory-bound mix must allocate L2");
    }

    #[test]
    fn labels() {
        assert_eq!(RobConfig::Baseline(128).label(), "Baseline_128");
        assert_eq!(
            RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)).label(),
            "2-Level P-ROB5"
        );
    }

    #[test]
    fn try_run_mix_surfaces_deadlock_as_typed_error() {
        let mut lab = small_lab();
        lab.machine.deadlock_cycles = 3_000;
        let mut plan = FaultPlan::new(5);
        plan.drop_fill = 1; // every L2 fill lost: the first miss starves
        lab.set_fault(Some(1), plan);
        let err = lab
            .try_run_mix(1, RobConfig::Baseline(32))
            .expect_err("dropped fills must deadlock");
        match err {
            SimError::Deadlock { snapshot } => {
                assert_eq!(snapshot.deadlock_cycles, 3_000);
                assert!(!snapshot.threads.is_empty());
            }
            other => panic!("expected deadlock, got {other}"),
        }
        // The plan is scoped to mix 1; other mixes stay healthy.
        assert!(lab.try_run_mix(2, RobConfig::Baseline(32)).is_ok());
    }

    #[test]
    fn delay_faults_are_absorbed_and_counted() {
        let mut lab = small_lab();
        let mut plan = FaultPlan::new(9);
        plan.delay_fill = 2;
        plan.delay_cycles = 64;
        lab.set_fault(None, plan);
        let r = lab
            .try_run_mix(1, RobConfig::Baseline(32))
            .expect("slow DRAM is not a failure");
        assert!(r.faults.delayed_fills > 0, "plan never fired");
        lab.clear_faults();
        assert!(lab.fault_for(1).is_none());
    }

    #[test]
    fn deterministic_runs() {
        let ft = || {
            let mut lab = small_lab();
            lab.run_mix(2, RobConfig::Baseline(32)).ft
        };
        assert_eq!(ft(), ft());
    }
}
