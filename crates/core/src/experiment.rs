//! Experiment harness: runs Table 2 mixes under ROB configurations and
//! computes the paper's metrics.
//!
//! The [`Lab`] memoizes the single-threaded normalization runs (one per
//! `(mix, thread-slot)`, keyed by the full run-relevant state — see
//! [`NormKey`]) so sweeping many ROB configurations — as every figure
//! does — pays the normalization cost once.
//!
//! Sweeps run in two phases ([`Lab::sweep`]): phase 1 serially
//! precomputes every normalization run the cells need into an
//! immutable [`NormTable`]; phase 2 fans the `mix × config` cells out
//! across scoped worker threads (`SMTSIM_JOBS` via the figure
//! binaries), each panic-isolated, and merges results in input order —
//! so rendered figures are byte-identical at any job count.

use crate::metrics::{fair_throughput, weighted_ipc};
use crate::twolevel::{TwoLevelConfig, TwoLevelRob, TwoLevelStats};
use smtsim_analysis::{DodAnalysis, L1_WINDOW};
use smtsim_obs::{Episode, EpisodeReconstructor, MetricsRegistry, TraceEvent, TraceLog, Tracer};
use smtsim_pipeline::{
    DodBounds, FaultPlan, FaultStats, FixedRob, MachineConfig, RobAllocator, SimError, SimStats,
    Simulator, StopCondition,
};
use smtsim_workload::{mix, Workload};
use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Static per-load DoD bound tables for a set of workloads, one table
/// per hardware thread. The bounds come from the interprocedural
/// dependence analysis (`smtsim-analysis`) over the same first-level
/// window the hardware counter scans; the simulator cross-checks its
/// exact dependent count against them at every L2 fill.
fn static_bounds(wls: &[Arc<Workload>]) -> Vec<DodBounds> {
    wls.iter()
        .map(|w| DodBounds::new(DodAnalysis::compute(&w.program, L1_WINDOW).max_map()))
        .collect()
}

/// A ROB configuration under test.
#[derive(Clone, Copy, Debug)]
pub enum RobConfig {
    /// Private fixed per-thread ROBs (`Baseline_32`, `Baseline_128`).
    Baseline(usize),
    /// A two-level scheme.
    TwoLevel(TwoLevelConfig),
}

impl RobConfig {
    /// Builds the allocator.
    pub fn build(&self) -> Box<dyn RobAllocator> {
        match *self {
            RobConfig::Baseline(n) => Box::new(FixedRob::new(n)),
            RobConfig::TwoLevel(cfg) => Box::new(TwoLevelRob::new(cfg)),
        }
    }

    /// Display label (matches the paper's legends).
    pub fn label(&self) -> String {
        self.build().name()
    }

    /// Canonical value fingerprint: a string derived from every
    /// configuration field. Unlike [`RobConfig::label`] — which names
    /// only the scheme and threshold — this distinguishes two distinct
    /// configurations that happen to share a display name (e.g. two
    /// `2-Level R-ROB16`s with different second-level sizes), so it is
    /// what the normalization cache keys on.
    pub fn fingerprint(&self) -> String {
        format!("{self:?}")
    }
}

/// Result of one mix × configuration run.
#[derive(Clone, Debug)]
pub struct MixRun {
    /// "Mix 1" .. "Mix 11".
    pub mix: String,
    /// Configuration label.
    pub config: String,
    /// Fair throughput (harmonic mean of weighted IPCs).
    pub ft: f64,
    /// Raw throughput (sum of IPCs).
    pub throughput: f64,
    /// Per-thread multithreaded IPC.
    pub ipc: Vec<f64>,
    /// Per-thread single-threaded (alone) IPC used for normalization.
    pub single_ipc: Vec<f64>,
    /// Per-thread weighted IPC.
    pub weighted: Vec<f64>,
    /// Full machine statistics.
    pub stats: SimStats,
    /// Two-level allocator statistics, when applicable.
    pub twolevel: Option<TwoLevelStats>,
    /// Faults actually injected during the multithreaded run (all zero
    /// when no [`FaultPlan`] was installed for the mix).
    pub faults: FaultStats,
}

/// Result of one mix × configuration run with tracing armed: the
/// [`MixRun`] metrics plus the raw event stream and the two standard
/// reductions over it (complete L2-miss episodes and the metrics
/// registry). Produced by [`Lab::run_cell_traced`] / [`Lab::sweep_traced`].
#[derive(Clone, Debug)]
pub struct TracedMixRun {
    /// The ordinary run result (identical to the untraced run: tracing
    /// observes the simulation without perturbing it).
    pub run: MixRun,
    /// The raw `(cycle, event)` stream, in emission order.
    pub events: Vec<(u64, TraceEvent)>,
    /// L2-miss episodes reconstructed from the stream.
    pub episodes: Vec<Episode>,
    /// Counters and histograms folded from the stream.
    pub metrics: MetricsRegistry,
}

/// Cache key of one memoized normalization run. Every input that can
/// change the measured single-threaded IPC participates: the workload
/// (`mix`, `slot`, `seed`), the run length (`st_budget`, `warmup`),
/// the reference ROB configuration (by value fingerprint, not display
/// label) and the machine configuration. Mutating any of these on the
/// [`Lab`] therefore misses the cache instead of silently serving an
/// IPC measured under the old state.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct NormKey {
    mix: usize,
    slot: usize,
    config: String,
    st_budget: u64,
    warmup: u64,
    seed: u64,
    machine: String,
}

/// Immutable product of a sweep's phase 1: the single-threaded
/// reference IPC (or the typed error its run produced) for every
/// `(mix, slot)` the sweep's cells need, all measured under
/// [`Lab::norm`]. Computed serially in deterministic `(mix, slot)`
/// order, then shared read-only by the phase-2 workers.
#[derive(Clone, Debug)]
pub struct NormTable {
    entries: BTreeMap<(usize, usize), Result<f64, SimError>>,
}

impl NormTable {
    /// The reference IPC of `(mix, slot)`, or the error its
    /// normalization run produced. A missing entry (the table was
    /// built for a different mix set) is an [`SimError::InvalidConfig`].
    pub fn get(&self, mix: usize, slot: usize) -> Result<f64, SimError> {
        match self.entries.get(&(mix, slot)) {
            Some(r) => r.clone(),
            None => Err(SimError::InvalidConfig {
                reason: format!("normalization table has no entry for mix {mix} slot {slot}"),
            }),
        }
    }

    /// Number of `(mix, slot)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One cell of a sweep: a mix index under a ROB configuration.
pub type SweepCell = (usize, RobConfig);

/// Runs `f` with panics converted to [`SimError::CellPanic`], so one
/// poisoned sweep cell degrades to an `n/a` figure cell instead of
/// killing the whole sweep (or a worker thread).
fn catch_cell<T>(f: impl FnOnce() -> T) -> Result<T, SimError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let reason = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        SimError::CellPanic { reason }
    })
}

/// Experiment driver with memoized normalization runs.
pub struct Lab {
    /// The multithreaded machine (defaults to Table 1).
    pub machine: MachineConfig,
    /// Workload-generation seed.
    pub seed: u64,
    /// Commit target for multithreaded runs (the run stops when any
    /// thread reaches it, as in the paper).
    pub mt_budget: u64,
    /// Commit target for single-threaded normalization runs.
    pub st_budget: u64,
    /// Functional warm-up instructions per thread before timed
    /// simulation (caches and predictors; see `SimulatorBuilder::warmup`).
    pub warmup: u64,
    /// Configuration of the reference machine used for the
    /// single-threaded normalization runs. Weighted IPCs of *every*
    /// configuration are normalized against the same reference
    /// (Baseline_32 alone), so FT values are directly comparable across
    /// the paper's bar charts.
    pub norm: RobConfig,
    /// Worker threads for [`Lab::sweep`]: `None` (the default) uses
    /// [`std::thread::available_parallelism`]; `Some(1)` forces the
    /// serial path. The figure binaries set this from the
    /// `SMTSIM_JOBS` environment knob. The sweep output is
    /// byte-identical at any job count.
    pub jobs: Option<usize>,
    single_cache: BTreeMap<NormKey, f64>,
    /// Fault plan applied to every multithreaded run (see
    /// [`Lab::set_fault`]).
    global_fault: Option<FaultPlan>,
    /// Per-mix fault plans; these take precedence over `global_fault`.
    mix_faults: BTreeMap<usize, FaultPlan>,
}

impl Lab {
    /// A lab over the paper's Table 1 machine with laptop-scale
    /// budgets (see EXPERIMENTS.md for the budget used per figure).
    pub fn new(seed: u64) -> Self {
        Lab {
            machine: MachineConfig::icpp08(),
            seed,
            mt_budget: 60_000,
            st_budget: 60_000,
            warmup: 60_000,
            norm: RobConfig::Baseline(32),
            jobs: None,
            single_cache: BTreeMap::new(),
            global_fault: None,
            mix_faults: BTreeMap::new(),
        }
    }

    /// Overrides the commit budgets.
    pub fn with_budgets(mut self, mt: u64, st: u64) -> Self {
        self.change_state(|lab| {
            lab.mt_budget = mt;
            lab.st_budget = st;
        });
        self
    }

    /// Overrides the functional warm-up length (instructions per
    /// thread).
    #[must_use]
    pub fn with_warmup(mut self, insts: u64) -> Self {
        self.change_state(|lab| lab.warmup = insts);
        self
    }

    /// Overrides the sweep worker-thread count (`None` = available
    /// parallelism; the sweep output is byte-identical either way).
    #[must_use]
    pub fn with_jobs(mut self, jobs: Option<usize>) -> Self {
        self.change_state(|lab| lab.jobs = jobs);
        self
    }

    /// Overrides the reference configuration for single-threaded
    /// normalization runs.
    #[must_use]
    pub fn with_norm(mut self, norm: RobConfig) -> Self {
        self.change_state(|lab| lab.norm = norm);
        self
    }

    /// The single funnel for builder-style state changes. The
    /// normalization cache needs no flushing here *by construction*:
    /// every run-relevant field participates in [`NormKey`], so a
    /// changed field misses the cache instead of hitting a stale entry
    /// (and restoring the old value legitimately re-hits the old
    /// entry). Route any new `with_*` mutation through this point — if
    /// the cache ever grows state [`NormKey`] cannot see, this is the
    /// one place that must learn to invalidate it.
    fn change_state(&mut self, apply: impl FnOnce(&mut Self)) {
        apply(self);
    }

    /// Installs a fault plan for multithreaded runs: `mix = None` sets a
    /// lab-wide plan, `mix = Some(i)` targets one mix (and overrides the
    /// lab-wide plan for it). Single-threaded normalization runs are
    /// never faulted — they define the healthy reference every weighted
    /// IPC is measured against.
    pub fn set_fault(&mut self, mix: Option<usize>, plan: FaultPlan) {
        match mix {
            None => self.global_fault = Some(plan),
            Some(i) => {
                self.mix_faults.insert(i, plan);
            }
        }
    }

    /// Removes all installed fault plans.
    pub fn clear_faults(&mut self) {
        self.global_fault = None;
        self.mix_faults.clear();
    }

    /// The plan a multithreaded run of `mix_idx` would use, if any.
    pub fn fault_for(&self, mix_idx: usize) -> Option<&FaultPlan> {
        self.mix_faults.get(&mix_idx).or(self.global_fault.as_ref())
    }

    /// Single-threaded IPC of `slot` in `mix_idx` under `rob` — the
    /// thread running *alone* on that machine (memoized). `run_mix`
    /// always normalizes with [`Lab::norm`]; this method is public so
    /// studies can also compute per-configuration baselines.
    pub fn single_ipc(&mut self, mix_idx: usize, slot: usize, rob: RobConfig) -> f64 {
        match self.try_single_ipc(mix_idx, slot, rob) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Lab::single_ipc`]: configuration errors,
    /// deadlocks and invariant violations come back as [`SimError`]
    /// instead of aborting the sweep.
    pub fn try_single_ipc(
        &mut self,
        mix_idx: usize,
        slot: usize,
        rob: RobConfig,
    ) -> Result<f64, SimError> {
        let key = self.norm_key(mix_idx, slot, rob);
        if let Some(&v) = self.single_cache.get(&key) {
            return Ok(v);
        }
        let wl = Arc::new(mix(mix_idx).instantiate_single(slot, self.seed));
        let bounds = static_bounds(std::slice::from_ref(&wl));
        let mut cfg = self.machine.clone();
        cfg.num_threads = 1;
        cfg.fetch_threads = 1;
        let mut sim = Simulator::builder(cfg, vec![wl], rob.build(), self.seed)
            .dod_bounds(bounds)
            .warmup(self.warmup)
            .build()?;
        sim.try_run(StopCondition::AnyThreadCommitted(self.st_budget))?;
        let ipc = sim.stats().threads[0].ipc(sim.cycle());
        self.single_cache.insert(key, ipc);
        Ok(ipc)
    }

    /// The cache key a normalization run of `(mix, slot)` under `rob`
    /// would use given the lab's *current* state.
    fn norm_key(&self, mix_idx: usize, slot: usize, rob: RobConfig) -> NormKey {
        NormKey {
            mix: mix_idx,
            slot,
            config: rob.fingerprint(),
            st_budget: self.st_budget,
            warmup: self.warmup,
            seed: self.seed,
            machine: format!("{:?}", self.machine),
        }
    }

    /// Number of distinct normalization runs currently memoized
    /// (distinct [`NormKey`]s — mutating budgets, seed, warm-up or the
    /// machine grows this rather than overwriting entries).
    pub fn cached_norm_runs(&self) -> usize {
        self.single_cache.len()
    }

    /// Worker-thread count a sweep would use right now: [`Lab::jobs`]
    /// if set, otherwise the machine's available parallelism.
    pub fn effective_jobs(&self) -> usize {
        self.jobs
            .or_else(|| {
                std::thread::available_parallelism()
                    .ok()
                    .map(NonZeroUsize::get)
            })
            .unwrap_or(1)
            .max(1)
    }

    /// Phase 1 of a sweep: computes (and memoizes) the normalization
    /// run of every `(mix, slot)` in `mixes` under [`Lab::norm`],
    /// serially, in ascending `(mix, slot)` order, and snapshots the
    /// results into an immutable [`NormTable`]. A mix whose very
    /// instantiation panics is skipped here — its phase-2 cells hit
    /// the same panic and report it per cell.
    pub fn norm_table(&mut self, mixes: &[usize]) -> NormTable {
        let mut sorted: Vec<usize> = mixes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut entries = BTreeMap::new();
        let norm = self.norm;
        for m in sorted {
            let Ok(slots) = catch_cell(|| mix(m).benchmarks.len()) else {
                continue;
            };
            for slot in 0..slots {
                let r = catch_cell(|| self.try_single_ipc(m, slot, norm)).and_then(|r| r);
                entries.insert((m, slot), r);
            }
        }
        NormTable { entries }
    }

    /// Runs one `mix × config` cell against a phase-1 normalization
    /// table. Takes `&self` — a cell mutates no lab state, which is
    /// what lets [`Lab::sweep`] fan cells out across threads while
    /// sharing one `Lab` and one [`NormTable`].
    pub fn run_cell(
        &self,
        mix_idx: usize,
        rob: RobConfig,
        norm: &NormTable,
    ) -> Result<MixRun, SimError> {
        self.run_cell_inner(mix_idx, rob, norm, smtsim_obs::NoopTracer)
            .map(|(run, _)| run)
    }

    /// [`Lab::run_cell`] with tracing armed: the multithreaded run
    /// collects the full structured event stream (warm-up excluded),
    /// which is folded into episodes and metrics. The [`MixRun`] inside
    /// is identical to the untraced cell's — tracing is observational.
    pub fn run_cell_traced(
        &self,
        mix_idx: usize,
        rob: RobConfig,
        norm: &NormTable,
    ) -> Result<TracedMixRun, SimError> {
        let (run, log) = self.run_cell_inner(mix_idx, rob, norm, TraceLog::new())?;
        let events = log.into_events();
        let episodes = EpisodeReconstructor::from_events(&events);
        let metrics = MetricsRegistry::from_events(&events);
        Ok(TracedMixRun {
            run,
            events,
            episodes,
            metrics,
        })
    }

    /// Shared body of [`Lab::run_cell`] and [`Lab::run_cell_traced`]:
    /// builds the simulator through [`Simulator::builder`] (bounds →
    /// fault plan → warm-up, tracing armed last), runs the mix and
    /// computes the metrics. Returns the tracer so traced callers can
    /// fold the collected stream.
    fn run_cell_inner<T: Tracer>(
        &self,
        mix_idx: usize,
        rob: RobConfig,
        norm: &NormTable,
        tracer: T,
    ) -> Result<(MixRun, T), SimError> {
        let m = mix(mix_idx);
        let wls: Vec<Arc<Workload>> = m.instantiate(self.seed).into_iter().map(Arc::new).collect();
        let bounds = static_bounds(&wls);
        let mut builder = Simulator::builder(self.machine.clone(), wls, rob.build(), self.seed)
            .dod_bounds(bounds)
            .warmup(self.warmup)
            .tracer(tracer);
        if let Some(plan) = self.fault_for(mix_idx) {
            builder = builder.fault_plan(plan.clone());
        }
        let mut sim = builder.build()?;
        let run_err = sim
            .try_run(StopCondition::AnyThreadCommitted(self.mt_budget))
            .err();
        let faults = sim.fault_stats();
        if let Some(e) = run_err {
            return Err(e);
        }
        let cycles = sim.cycle();
        let stats = sim.stats().clone();
        let ipc: Vec<f64> = stats.threads.iter().map(|t| t.ipc(cycles)).collect();
        let single_ipc: Vec<f64> = (0..ipc.len())
            .map(|slot| norm.get(mix_idx, slot))
            .collect::<Result<_, _>>()?;
        let weighted: Vec<f64> = ipc
            .iter()
            .zip(&single_ipc)
            .map(|(&mt, &st)| weighted_ipc(mt, st))
            .collect();
        let twolevel = sim
            .allocator()
            .as_any()
            .downcast_ref::<TwoLevelRob>()
            .map(|a| a.stats());
        let run = MixRun {
            mix: m.name.to_string(),
            config: rob.label(),
            ft: fair_throughput(&weighted),
            throughput: ipc.iter().sum(),
            ipc,
            single_ipc,
            weighted,
            stats,
            twolevel,
            faults,
        };
        Ok((run, sim.into_tracer()))
    }

    /// Runs a batch of `mix × config` cells and returns their results
    /// in input order.
    ///
    /// Phase 1 serially precomputes every normalization run the cells
    /// need ([`Lab::norm_table`]); the immutable table is then shared
    /// read-only by phase 2, which fans the cells out across
    /// [`Lab::effective_jobs`] scoped worker threads pulling from a
    /// shared work queue. Each cell is panic-isolated: a panicking
    /// cell yields [`SimError::CellPanic`] — rendered `n/a` by the
    /// figure layer — instead of killing the sweep. Results are merged
    /// by input index, so the output (and every figure rendered from
    /// it) is byte-identical at any job count, including the serial
    /// `jobs = 1` path.
    pub fn sweep(&mut self, cells: &[SweepCell]) -> Vec<Result<MixRun, SimError>> {
        self.sweep_with(cells, |lab, m, cfg, norm| lab.run_cell(m, cfg, norm))
    }

    /// [`Lab::sweep`] with tracing armed on every cell (see
    /// [`Lab::run_cell_traced`]). Same two-phase structure, same
    /// panic isolation, same input-order merge — the traced output is
    /// byte-identical at any job count.
    pub fn sweep_traced(&mut self, cells: &[SweepCell]) -> Vec<Result<TracedMixRun, SimError>> {
        self.sweep_with(cells, |lab, m, cfg, norm| lab.run_cell_traced(m, cfg, norm))
    }

    /// The sweep engine shared by [`Lab::sweep`] and
    /// [`Lab::sweep_traced`]: phase-1 normalization, phase-2 fan-out
    /// over a shared work queue, input-order merge.
    fn sweep_with<R: Send>(
        &mut self,
        cells: &[SweepCell],
        run: impl Fn(&Lab, usize, RobConfig, &NormTable) -> Result<R, SimError> + Sync,
    ) -> Vec<Result<R, SimError>> {
        let mixes: Vec<usize> = cells.iter().map(|&(m, _)| m).collect();
        let norm = self.norm_table(&mixes);
        let jobs = self.effective_jobs().min(cells.len().max(1));
        let this: &Lab = self;
        let run = &run;
        if jobs <= 1 {
            return cells
                .iter()
                .map(|&(m, cfg)| catch_cell(|| run(this, m, cfg, &norm)).and_then(|r| r))
                .collect();
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let norm = &norm;
            let next = &next;
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&(m, cfg)) = cells.get(i) else {
                                break;
                            };
                            out.push((i, catch_cell(|| run(this, m, cfg, norm)).and_then(|r| r)));
                        }
                        out
                    })
                })
                .collect();
            let mut merged: Vec<Option<Result<R, SimError>>> = cells.iter().map(|_| None).collect();
            for h in handles {
                let chunk = h.join().expect("workers catch cell panics");
                for (i, r) in chunk {
                    merged[i] = Some(r);
                }
            }
            merged
                .into_iter()
                .map(|o| o.expect("the work queue visits every cell index"))
                .collect()
        })
    }

    /// Runs `mix_idx` under `rob` and computes all metrics.
    ///
    /// # Panics
    /// Panics on any [`SimError`]; use [`Lab::try_run_mix`] in sweeps
    /// that must survive a poisoned cell.
    pub fn run_mix(&mut self, mix_idx: usize, rob: RobConfig) -> MixRun {
        match self.try_run_mix(mix_idx, rob) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Lab::run_mix`]. The multithreaded run uses
    /// the fault plan installed via [`Lab::set_fault`] (if any); errors
    /// from either the faulted run or the normalization runs are
    /// returned instead of panicking, so a sweep can record the cell as
    /// failed and continue.
    pub fn try_run_mix(&mut self, mix_idx: usize, rob: RobConfig) -> Result<MixRun, SimError> {
        let norm = self.norm_table(&[mix_idx]);
        self.run_cell(mix_idx, rob, &norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lab() -> Lab {
        Lab::new(7).with_budgets(8_000, 8_000)
    }

    #[test]
    fn single_ipc_is_memoized_and_positive() {
        let mut lab = small_lab();
        let a = lab.single_ipc(1, 0, RobConfig::Baseline(32));
        let b = lab.single_ipc(1, 0, RobConfig::Baseline(32));
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn run_mix_produces_consistent_metrics() {
        let mut lab = small_lab();
        let r = lab.run_mix(1, RobConfig::Baseline(32));
        assert_eq!(r.config, "Baseline_32");
        assert_eq!(r.ipc.len(), 4);
        assert!(r.ft > 0.0 && r.ft < 1.5, "ft = {}", r.ft);
        for (w, (mt, st)) in r.weighted.iter().zip(r.ipc.iter().zip(&r.single_ipc)) {
            assert!((w - mt / st).abs() < 1e-9);
            // Sharing a core can't speed a thread up beyond small
            // measurement noise.
            assert!(*w < 1.3, "weighted {w}");
        }
        assert!(r.twolevel.is_none());
    }

    #[test]
    fn two_level_run_reports_allocator_stats() {
        let mut lab = small_lab();
        let r = lab.run_mix(1, RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)));
        assert_eq!(r.config, "2-Level Relaxed R-ROB15");
        let tl = r.twolevel.expect("two-level stats");
        assert!(tl.allocations > 0, "memory-bound mix must allocate L2");
    }

    #[test]
    fn labels() {
        assert_eq!(RobConfig::Baseline(128).label(), "Baseline_128");
        assert_eq!(
            RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)).label(),
            "2-Level P-ROB5"
        );
    }

    #[test]
    fn try_run_mix_surfaces_deadlock_as_typed_error() {
        let mut lab = small_lab();
        lab.machine.deadlock_cycles = 3_000;
        let mut plan = FaultPlan::new(5);
        plan.drop_fill = 1; // every L2 fill lost: the first miss starves
        lab.set_fault(Some(1), plan);
        let err = lab
            .try_run_mix(1, RobConfig::Baseline(32))
            .expect_err("dropped fills must deadlock");
        match err {
            SimError::Deadlock { snapshot } => {
                assert_eq!(snapshot.deadlock_cycles, 3_000);
                assert!(!snapshot.threads.is_empty());
            }
            other => panic!("expected deadlock, got {other}"),
        }
        // The plan is scoped to mix 1; other mixes stay healthy.
        assert!(lab.try_run_mix(2, RobConfig::Baseline(32)).is_ok());
    }

    #[test]
    fn delay_faults_are_absorbed_and_counted() {
        let mut lab = small_lab();
        let mut plan = FaultPlan::new(9);
        plan.delay_fill = 2;
        plan.delay_cycles = 64;
        lab.set_fault(None, plan);
        let r = lab
            .try_run_mix(1, RobConfig::Baseline(32))
            .expect("slow DRAM is not a failure");
        assert!(r.faults.delayed_fills > 0, "plan never fired");
        lab.clear_faults();
        assert!(lab.fault_for(1).is_none());
    }

    #[test]
    fn cache_invalidated_by_st_budget_change() {
        let mut lab = small_lab();
        let a = lab.single_ipc(1, 0, RobConfig::Baseline(32));
        assert_eq!(lab.cached_norm_runs(), 1);
        // Regression: this used to hit the stale 8k-budget entry and
        // silently serve it for the 2k-budget request.
        lab.st_budget = 2_000;
        let b = lab.single_ipc(1, 0, RobConfig::Baseline(32));
        assert_eq!(lab.cached_norm_runs(), 2, "budget change must miss");
        assert_ne!(a, b, "stale normalization IPC served across budgets");
        // Restoring the budget serves the originally measured value.
        lab.st_budget = 8_000;
        assert_eq!(lab.single_ipc(1, 0, RobConfig::Baseline(32)), a);
        assert_eq!(lab.cached_norm_runs(), 2);
    }

    #[test]
    fn cache_invalidated_by_seed_warmup_and_machine_changes() {
        let mut lab = small_lab();
        let base = lab.single_ipc(1, 1, RobConfig::Baseline(32));
        lab.seed = 8;
        let _ = lab.single_ipc(1, 1, RobConfig::Baseline(32));
        assert_eq!(lab.cached_norm_runs(), 2, "seed change must miss");
        lab.warmup = 4_000;
        let _ = lab.single_ipc(1, 1, RobConfig::Baseline(32));
        assert_eq!(lab.cached_norm_runs(), 3, "warm-up change must miss");
        lab.machine.mem.first_chunk += 400;
        let slow = lab.single_ipc(1, 1, RobConfig::Baseline(32));
        assert_eq!(lab.cached_norm_runs(), 4, "machine change must miss");
        // Slot 1 of Mix 1 is art (memory-bound): much slower DRAM must
        // change its alone-IPC, which the stale cache used to hide.
        assert_ne!(base, slow);
    }

    #[test]
    fn cache_distinguishes_configs_with_equal_labels() {
        let mut lab = small_lab();
        let a_cfg = TwoLevelConfig::r_rob(16);
        let mut b_cfg = a_cfg;
        b_cfg.l2_entries = 32;
        let a = RobConfig::TwoLevel(a_cfg);
        let b = RobConfig::TwoLevel(b_cfg);
        // Same display name, different machine: the old label-based
        // key collapsed these into one cache entry.
        assert_eq!(a.label(), b.label());
        assert_ne!(a.fingerprint(), b.fingerprint());
        let _ = lab.single_ipc(1, 1, a);
        let _ = lab.single_ipc(1, 1, b);
        assert_eq!(
            lab.cached_norm_runs(),
            2,
            "equal labels used to collide into one normalization entry"
        );
    }

    #[test]
    fn sweep_is_identical_serial_parallel_and_to_the_direct_api() {
        let cells: Vec<SweepCell> = vec![
            (1, RobConfig::Baseline(32)),
            (2, RobConfig::Baseline(32)),
            (1, RobConfig::TwoLevel(TwoLevelConfig::r_rob(16))),
            (9, RobConfig::Baseline(128)),
        ];
        let run = |jobs: usize| {
            let mut lab = small_lab();
            lab.jobs = Some(jobs);
            format!("{:?}", lab.sweep(&cells))
        };
        let serial = run(1);
        assert_eq!(serial, run(4), "job count changed sweep results");
        let mut lab = small_lab();
        let direct: Vec<Result<MixRun, SimError>> =
            cells.iter().map(|&(m, c)| lab.try_run_mix(m, c)).collect();
        assert_eq!(serial, format!("{direct:?}"));
    }

    #[test]
    fn sweep_isolates_panicking_cells() {
        let mut lab = small_lab();
        lab.jobs = Some(2);
        // Mix 99 does not exist: instantiating it panics. The sweep
        // must convert that to a typed per-cell error, not die.
        let rs = lab.sweep(&[(1, RobConfig::Baseline(32)), (99, RobConfig::Baseline(32))]);
        assert!(rs[0].is_ok(), "healthy cell poisoned: {:?}", rs[0]);
        match &rs[1] {
            Err(SimError::CellPanic { reason }) => {
                assert!(reason.contains("out of range"), "{reason}");
            }
            other => panic!("expected CellPanic, got {other:?}"),
        }
    }

    #[test]
    fn sweep_traced_isolates_panicking_cells() {
        let mut lab = small_lab();
        lab.jobs = Some(2);
        // Same poisoned-cell shape as the untraced sweep test, through
        // the traced engine: the panic must become a typed per-cell
        // error that downstream renderers show as `n/a`, and the
        // healthy cell's metrics must be exactly the untraced run's.
        let rs = lab.sweep_traced(&[(1, RobConfig::Baseline(32)), (99, RobConfig::Baseline(32))]);
        let traced = rs[0].as_ref().expect("healthy cell poisoned");
        assert!(!traced.events.is_empty(), "tracing was armed");
        assert_eq!(
            traced.episodes,
            smtsim_obs::EpisodeReconstructor::from_events(&traced.events),
            "episodes are the standard reduction of the cell's own stream"
        );
        match &rs[1] {
            Err(e @ SimError::CellPanic { reason }) => {
                assert!(reason.contains("out of range"), "{reason}");
                // The stable kind string the trace bin interpolates
                // into its `n/a (...)` row for a failed cell.
                assert_eq!(e.kind(), "panic");
            }
            other => panic!("expected CellPanic, got {other:?}"),
        }
        let untraced = lab.sweep(&[(1, RobConfig::Baseline(32))]);
        assert_eq!(
            format!("{:?}", traced.run),
            format!("{:?}", untraced[0].as_ref().expect("healthy cell")),
            "tracing perturbed the measured run"
        );
    }

    #[test]
    fn sweep_traced_is_identical_serial_and_parallel() {
        let cells: Vec<SweepCell> = vec![
            (1, RobConfig::Baseline(32)),
            (99, RobConfig::Baseline(32)),
            (2, RobConfig::TwoLevel(TwoLevelConfig::r_rob(16))),
        ];
        let run = |jobs: usize| {
            let mut lab = small_lab();
            lab.jobs = Some(jobs);
            format!("{:?}", lab.sweep_traced(&cells))
        };
        assert_eq!(run(1), run(4), "job count changed traced sweep results");
    }

    #[test]
    fn norm_table_covers_requested_mixes_and_reports_missing() {
        let mut lab = small_lab();
        let t = lab.norm_table(&[2, 1, 1]);
        assert_eq!(t.len(), 8, "4 slots per mix, duplicates collapsed");
        assert!(!t.is_empty());
        assert!(t.get(1, 3).is_ok());
        let missing = t.get(5, 0).expect_err("mix 5 was not requested");
        assert_eq!(missing.kind(), "invalid-config");
    }

    #[test]
    fn deterministic_runs() {
        let ft = || {
            let mut lab = small_lab();
            lab.run_mix(2, RobConfig::Baseline(32)).ft
        };
        assert_eq!(ft(), ft());
    }
}
