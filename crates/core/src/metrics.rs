//! Performance metrics: weighted IPC and the paper's **Fair Throughput
//! (FT)** — the harmonic mean of per-thread weighted IPCs (Luo et al.,
//! "Balancing Throughput and Fairness in SMT Processors", ISPASS 2001).
//!
//! A thread's weighted IPC is its multithreaded IPC divided by its IPC
//! when running alone on the same machine: its relative slowdown from
//! sharing. The harmonic mean punishes configurations that starve any
//! one thread, so FT combines throughput *and* fairness — the property
//! the paper's evaluation is built on ("the FT metric is NOT biased
//! towards the architectures that favor threads with high IPC").

/// A thread's weighted IPC: `multithreaded IPC / single-threaded IPC`.
///
/// Returns 0 for a degenerate zero single-thread IPC.
pub fn weighted_ipc(mt_ipc: f64, st_ipc: f64) -> f64 {
    if st_ipc <= 0.0 {
        0.0
    } else {
        mt_ipc / st_ipc
    }
}

/// Harmonic mean of a slice; 0 if empty or if any element is ≤ 0
/// (a starved thread zeroes fair throughput, by design).
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Fair Throughput: harmonic mean of weighted IPCs.
pub fn fair_throughput(weighted: &[f64]) -> f64 {
    harmonic_mean(weighted)
}

/// Arithmetic mean (for averaging FT across mixes, as the paper's
/// "Average" bars do).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Relative improvement of `new` over `base`, e.g. `Some(0.30)` =
/// +30 %.
///
/// Returns `None` when the comparison is undefined: a starved or
/// poisoned baseline (`base ≤ 0`, which previously rendered as a
/// misleading "+0 %") or a non-finite operand (a sweep average whose
/// cells all failed is `NaN`). Report tables render `None` as `n/a`.
pub fn improvement(new: f64, base: f64) -> Option<f64> {
    if base > 0.0 && base.is_finite() && new.is_finite() {
        Some(new / base - 1.0)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_ipc_is_relative_slowdown() {
        assert!((weighted_ipc(0.5, 2.0) - 0.25).abs() < 1e-12);
        assert_eq!(weighted_ipc(0.5, 0.0), 0.0);
    }

    #[test]
    fn harmonic_mean_basics() {
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 0.5]) - (2.0 / 3.0)).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn harmonic_punishes_imbalance() {
        // Same arithmetic mean, different balance: harmonic prefers the
        // balanced allocation — the fairness property the paper uses.
        let balanced = harmonic_mean(&[0.5, 0.5]);
        let skewed = harmonic_mean(&[0.9, 0.1]);
        assert!(balanced > skewed);
    }

    #[test]
    fn mean_and_improvement() {
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        let d = improvement(1.3, 1.0).expect("healthy baseline");
        assert!((d - 0.3).abs() < 1e-12);
    }

    #[test]
    fn improvement_over_degenerate_baseline_is_undefined() {
        // A starved baseline used to report "+0 %" — indistinguishable
        // from a genuinely unchanged result. It must be `None` now.
        assert_eq!(improvement(1.0, 0.0), None);
        assert_eq!(improvement(1.0, -0.5), None);
        assert_eq!(improvement(0.0, 0.0), None);
        // Poisoned sweep averages are NaN; comparisons against or of
        // them are undefined, not zero.
        assert_eq!(improvement(f64::NAN, 1.0), None);
        assert_eq!(improvement(1.0, f64::NAN), None);
        assert_eq!(improvement(f64::INFINITY, 1.0), None);
        // A regression is still a well-defined (negative) improvement.
        assert_eq!(improvement(0.5, 1.0), Some(-0.5));
        // And a zero over a healthy baseline is exactly -100 %.
        assert_eq!(improvement(0.0, 2.0), Some(-1.0));
    }

    #[test]
    fn ft_equals_harmonic_of_weighted() {
        let w = [0.4, 0.6, 0.8, 0.5];
        assert!((fair_throughput(&w) - harmonic_mean(&w)).abs() < 1e-15);
    }
}
