//! A hand-rolled TOML-subset parser for `experiments/*.toml`.
//!
//! The workspace is dependency-free by design (tier-1 must build
//! offline), so experiment specs use a small, strictly-defined subset
//! of TOML rather than a crates.io parser:
//!
//! * `[section]` and `[dotted.section]` headers;
//! * `key = value` items, where a value is a double-quoted string
//!   (with `\\ \" \n \t` escapes), a decimal integer (optional `_`
//!   separators), `true`/`false`, or a single-line array of those;
//! * `#` comments and blank lines.
//!
//! Everything else — multi-line arrays, floats, dates, inline tables,
//! key dotting — is a typed parse error, never a silent skip: a spec
//! the parser does not fully understand must not half-configure an
//! experiment. Every parsed item carries its source line so spec-level
//! validation (unknown key, type mismatch, bad registry id) can point
//! at the offending line, and duplicate sections or duplicate keys are
//! refused at parse time.

use super::SpecError;

/// One parsed value of the TOML subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// A double-quoted string.
    Str(String),
    /// A decimal integer (`u64`: every numeric knob in the spec
    /// universe is a budget, seed, size or threshold).
    Int(u64),
    /// `true` / `false`.
    Bool(bool),
    /// A single-line `[v, v, ...]` array.
    Array(Vec<Value>),
}

impl Value {
    /// Human name of the value's type, for mismatch diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// One `key = value` item, with the line it came from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Item {
    /// The key, verbatim.
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// 1-based source line of the item.
    pub line: usize,
}

/// One `[section]`, with its items in file order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// The header name (dots preserved: `scheme.l2-192`).
    pub name: String,
    /// 1-based source line of the header.
    pub line: usize,
    /// The section's items, in file order.
    pub items: Vec<Item>,
}

/// A parsed document: sections in file order. Items before the first
/// header are refused (the spec format has no root-level keys).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Doc {
    /// The sections, in file order.
    pub sections: Vec<Section>,
}

impl Doc {
    /// The section named `name`, if present.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }
}

/// Parses `text` (read from `file`, used for diagnostics only) into a
/// [`Doc`]. Any construct outside the documented subset is a typed
/// [`SpecError`] carrying the file name and line.
pub fn parse(file: &str, text: &str) -> Result<Doc, SpecError> {
    let err = |line: usize, message: String| SpecError {
        file: file.to_string(),
        line,
        message,
    };
    let mut doc = Doc {
        sections: Vec::new(),
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(err(lineno, format!("unterminated section header `{line}`")));
            };
            let name = name.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            {
                return Err(err(lineno, format!("invalid section name `{name}`")));
            }
            if let Some(prev) = doc.section(name) {
                return Err(err(
                    lineno,
                    format!(
                        "duplicate section `[{name}]` (first defined on line {})",
                        prev.line
                    ),
                ));
            }
            doc.sections.push(Section {
                name: name.to_string(),
                line: lineno,
                items: Vec::new(),
            });
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(err(
                lineno,
                format!("expected `key = value` or `[section]`, found `{line}`"),
            ));
        };
        let key = line[..eq].trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_'))
        {
            return Err(err(lineno, format!("invalid key `{key}`")));
        }
        let Some(section) = doc.sections.last_mut() else {
            return Err(err(
                lineno,
                format!("key `{key}` before any `[section]` header"),
            ));
        };
        if let Some(prev) = section.items.iter().find(|i| i.key == key) {
            return Err(err(
                lineno,
                format!(
                    "duplicate key `{key}` in `[{}]` (first set on line {})",
                    section.name, prev.line
                ),
            ));
        }
        let value = parse_value(line[eq + 1..].trim())
            .map_err(|m| err(lineno, format!("value of `{key}`: {m}")))?;
        section.items.push(Item {
            key: key.to_string(),
            value,
            line: lineno,
        });
    }
    Ok(doc)
}

/// Strips a `#` comment, honoring `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses one value of the subset. Errors are bare messages; the
/// caller attaches file/line context.
fn parse_value(s: &str) -> Result<Value, String> {
    if s.is_empty() {
        return Err("missing value".into());
    }
    if let Some(rest) = s.strip_prefix('"') {
        let (string, remainder) = parse_string(rest)?;
        if !remainder.trim().is_empty() {
            return Err(format!("trailing text `{}` after string", remainder.trim()));
        }
        return Ok(Value::Str(string));
    }
    if let Some(rest) = s.strip_prefix('[') {
        let Some(body) = rest.strip_suffix(']') else {
            return Err("unterminated array (the subset is single-line)".into());
        };
        let mut items = Vec::new();
        for part in split_array(body)? {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Array(_) => return Err("nested arrays are not in the subset".into()),
                v => items.push(v),
            }
        }
        return Ok(Value::Array(items));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let digits: String = s.chars().filter(|&c| c != '_').collect();
    if !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit()) {
        return digits
            .parse::<u64>()
            .map(Value::Int)
            .map_err(|_| format!("integer `{s}` exceeds u64"));
    }
    Err(format!(
        "`{s}` is not a string, unsigned integer, boolean or array \
         (the supported TOML subset)"
    ))
}

/// Parses the body of a double-quoted string (opening quote already
/// consumed), returning the unescaped text and whatever follows the
/// closing quote.
fn parse_string(s: &str) -> Result<(String, &str), String> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, other)) => return Err(format!("unsupported escape `\\{other}`")),
                None => return Err("dangling escape at end of string".into()),
            },
            _ => out.push(c),
        }
    }
    Err("unterminated string".into())
}

/// Splits an array body on top-level commas (commas inside strings are
/// preserved).
fn split_array(body: &str) -> Result<Vec<&str>, String> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_str {
        return Err("unterminated string in array".into());
    }
    parts.push(&body[start..]);
    Ok(parts)
}

/// Renders one value back into subset syntax (the exact inverse of
/// [`parse_value`], used by the canonical spec renderer).
pub fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) => {
            let mut out = String::from("\"");
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    _ => out.push(c),
                }
            }
            out.push('"');
            out
        }
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(render_value).collect();
            format!("[{}]", inner.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_items_and_comments() {
        let doc = parse(
            "t.toml",
            "# header comment\n[experiment]\nid = \"fig2\" # trailing\nbudget = 40_000\n\
             flag = true\nschemes = [\"a\", \"b\"]\n[scheme.x]\nl2_entries = 192\n",
        )
        .unwrap();
        assert_eq!(doc.sections.len(), 2);
        let exp = doc.section("experiment").unwrap();
        assert_eq!(exp.items[0].value, Value::Str("fig2".into()));
        assert_eq!(exp.items[0].line, 3);
        assert_eq!(exp.items[1].value, Value::Int(40_000));
        assert_eq!(exp.items[2].value, Value::Bool(true));
        assert_eq!(
            exp.items[3].value,
            Value::Array(vec![Value::Str("a".into()), Value::Str("b".into())])
        );
        assert_eq!(
            doc.section("scheme.x").unwrap().items[0].value,
            Value::Int(192)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = parse("t.toml", "[s]\nv = \"a \\\"q\\\" \\\\ # not a comment\"\n").unwrap();
        let Value::Str(s) = &doc.section("s").unwrap().items[0].value else {
            panic!("expected string")
        };
        assert_eq!(s, "a \"q\" \\ # not a comment");
        let rendered = render_value(&Value::Str(s.clone()));
        let reparsed = parse("t.toml", &format!("[s]\nv = {rendered}\n")).unwrap();
        assert_eq!(
            reparsed.section("s").unwrap().items[0].value,
            Value::Str(s.clone())
        );
    }

    #[test]
    fn duplicate_section_and_key_are_typed_errors() {
        let e = parse("t.toml", "[a]\n[b]\n[a]\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate section `[a]`"), "{e}");
        assert!(e.message.contains("line 1"), "{e}");
        let e = parse("t.toml", "[a]\nk = 1\nk = 2\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate key `k`"), "{e}");
    }

    #[test]
    fn out_of_subset_constructs_are_refused_with_lines() {
        for (text, line, frag) in [
            ("k = 1\n", 1, "before any `[section]`"),
            ("[a]\nk = 1.5\n", 2, "not a string"),
            ("[a]\nk = [1,\n2]\n", 2, "unterminated array"),
            ("[a]\nk = \"x\n", 2, "unterminated string"),
            ("[a\nk = 1\n", 1, "unterminated section"),
            ("[a]\njust words\n", 2, "expected `key = value`"),
            ("[a]\nk = [[1]]\n", 2, "nested arrays"),
            ("[a]\nk = \"x\" y\n", 2, "trailing text"),
        ] {
            let e = parse("t.toml", text).unwrap_err();
            assert_eq!(e.line, line, "{text:?}: {e}");
            assert!(e.message.contains(frag), "{text:?}: {e}");
            assert_eq!(e.file, "t.toml");
        }
    }

    #[test]
    fn render_value_is_parse_inverse() {
        let vals = [
            Value::Int(384),
            Value::Bool(false),
            Value::Str("2-Level R-ROB16".into()),
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(9)]),
        ];
        for v in vals {
            let text = format!("[s]\nk = {}\n", render_value(&v));
            let doc = parse("t.toml", &text).unwrap();
            assert_eq!(doc.section("s").unwrap().items[0].value, v);
        }
    }
}
