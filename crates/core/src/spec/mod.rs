//! Declarative experiment specs (`experiments/*.toml`).
//!
//! An [`ExperimentSpec`] is the data-driven description of one
//! experiment: which machine, which ROB schemes, which normalization
//! reference, which mixes, which knob scales, and what kind of output
//! (figure, histogram, table, accuracy table, episode dump, …). Every
//! figure/table binary in `smtsim-bench` is a thin wrapper that loads
//! a committed spec and hands it to the spec executor; a new scenario
//! is a new `.toml` file, not a new bin.
//!
//! The pipeline is `parse → resolve → lower`:
//!
//! 1. [`toml::parse`] reads the strict TOML subset (typed errors with
//!    file/line context — see the module docs);
//! 2. this module validates the document against the spec schema
//!    (unknown keys/sections, per-kind requirements, type mismatches)
//!    and resolves every id through [`registry`] — scheme ids like
//!    `r-rob-16`, machine ids, fetch policies, mix sets, knob presets
//!    — plus local `[scheme.<name>]` variant sections that derive a
//!    custom configuration from a registry base;
//! 3. `smtsim-bench` lowers the resolved spec into the existing
//!    [`crate::Lab`] machinery, merging environment knobs with the
//!    documented precedence (explicit env > spec > built-in default).
//!
//! Every byte-affecting spec field participates in the **spec
//! fingerprint**: the FNV hash of the spec's canonical rendering
//! ([`ExperimentSpec::render`]). The fingerprint folds into the
//! journal universe ([`crate::Lab::journal_universe`]), so a resumed
//! `SMTSIM_JOURNAL` recorded against an edited spec fails with a typed
//! universe mismatch instead of silently mixing results. Comment or
//! formatting edits do not change the canonical rendering and
//! therefore keep journals valid.

pub mod registry;
pub mod toml;

use crate::experiment::RobConfig;
use crate::journal;
use crate::twolevel::{DodPredictorKind, ReleasePolicy, Scheme, TwoLevelConfig};
use smtsim_pipeline::{MachineConfig, SimError};
use std::fmt::Write as _;
use std::path::Path;

use self::toml::{Item, Section, Value};

/// A typed spec-layer failure, carrying the offending file and line.
/// Converts into [`SimError::InvalidConfig`] (exit code 2 through the
/// `run_bin` policy).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// Spec file the error came from (as given to the parser).
    pub file: String,
    /// 1-based source line (0 = whole-file problems, e.g. I/O).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

impl From<SpecError> for SimError {
    fn from(e: SpecError) -> Self {
        SimError::InvalidConfig {
            reason: e.to_string(),
        }
    }
}

/// What a spec produces — the output-kind family covering all of the
/// harness binaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecKind {
    /// An FT bar-chart figure (one series per scheme).
    Figure,
    /// A per-mix DoD histogram (one scheme), optionally compared
    /// against a second scheme's pooled mean.
    Histogram,
    /// Table 1: the machine configuration.
    Table1,
    /// Table 2: the benchmark mixes.
    Table2,
    /// The DoD-accuracy table (oracle + predictor quality per scheme).
    Accuracy,
    /// The structured-trace episode summary (+ raw JSONL dump).
    Episodes,
    /// The differential-conformance suite (mixes, corpus, fresh fuzz).
    Conform,
    /// Bounded model checking + trace conformance.
    Check,
    /// The kill-and-resume journal byte-identity proof.
    Resume,
    /// The wall-clock sweep benchmark over a list of figure specs.
    SweepBench,
    /// The cold-vs-warm serve-daemon benchmark over a figure spec
    /// (in-process `smtsim-serve` round trip against a scratch cache).
    ServeBench,
    /// A suite: renders each listed spec into `results/<id>.txt`.
    Suite,
}

impl SpecKind {
    /// The `kind = "..."` strings.
    const ALL: &'static [(&'static str, SpecKind)] = &[
        ("figure", SpecKind::Figure),
        ("histogram", SpecKind::Histogram),
        ("table1", SpecKind::Table1),
        ("table2", SpecKind::Table2),
        ("accuracy", SpecKind::Accuracy),
        ("episodes", SpecKind::Episodes),
        ("conform", SpecKind::Conform),
        ("check", SpecKind::Check),
        ("resume", SpecKind::Resume),
        ("sweep-bench", SpecKind::SweepBench),
        ("serve-bench", SpecKind::ServeBench),
        ("suite", SpecKind::Suite),
    ];

    fn parse(s: &str) -> Option<SpecKind> {
        Self::ALL.iter().find(|(n, _)| *n == s).map(|&(_, k)| k)
    }

    /// The canonical id string.
    pub fn as_str(self) -> &'static str {
        Self::ALL
            .iter()
            .find(|&&(_, k)| k == self)
            .map(|&(n, _)| n)
            .expect("every kind has an id")
    }

    /// Does this kind consume a `schemes` list?
    fn uses_schemes(self) -> bool {
        matches!(
            self,
            SpecKind::Figure
                | SpecKind::Histogram
                | SpecKind::Accuracy
                | SpecKind::Episodes
                | SpecKind::Resume
        )
    }

    /// Does this kind require a `title`?
    fn needs_title(self) -> bool {
        matches!(
            self,
            SpecKind::Figure
                | SpecKind::Histogram
                | SpecKind::Accuracy
                | SpecKind::Episodes
                | SpecKind::Resume
        )
    }

    /// Does this kind consume a `specs` list (of sibling spec ids)?
    fn uses_specs(self) -> bool {
        matches!(
            self,
            SpecKind::SweepBench | SpecKind::ServeBench | SpecKind::Suite
        )
    }
}

/// One resolved scheme the spec runs: the reference name used in the
/// `schemes` array, the series label, and the concrete configuration.
#[derive(Clone, Debug)]
pub struct SpecVariant {
    /// The id referenced in `schemes = [...]` (registry id or local
    /// `[scheme.<name>]` section name).
    pub name: String,
    /// Series/legend label.
    pub label: String,
    /// The concrete ROB configuration.
    pub config: RobConfig,
}

/// A local `[scheme.<name>]` section: a registry base plus field
/// overrides, kept in typed form so the canonical renderer can write
/// it back deterministically.
#[derive(Clone, Debug, Default)]
pub struct SchemeOverrides {
    /// Section name (the id the `schemes` array references).
    pub name: String,
    /// Registry scheme id this variant derives from.
    pub base: String,
    /// Explicit series label (default: derived from the configuration).
    pub label: Option<String>,
    /// First-level (per-thread) ROB entries.
    pub l1_entries: Option<u64>,
    /// Second-level (shared) partition entries.
    pub l2_entries: Option<u64>,
    /// DoD threshold.
    pub dod_threshold: Option<u64>,
    /// Reactive recheck cadence, in cycles.
    pub recheck_interval: Option<u64>,
    /// Release policy id (`trigger-serviced`, `drain-and-no-miss`,
    /// `drain-only`).
    pub release: Option<String>,
    /// Count delay, in cycles (switches the scheme to CDR).
    pub cdr_delay: Option<u64>,
    /// Reactive precondition: trigger load must be oldest in flight.
    pub require_oldest: Option<bool>,
    /// Reactive precondition: first level must be full.
    pub require_full: Option<bool>,
    /// Predictor id (`last-value`, `threshold-bit`, `path`; switches
    /// the scheme to predictive).
    pub predictor: Option<String>,
}

/// Knob values the spec contributes (`[knobs]` overlaid on the
/// `knobs = "<preset>"` preset). `None` = not specified; the
/// environment and the built-in defaults fill the rest (see the
/// precedence table in EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpecKnobs {
    /// `BUDGET` equivalent.
    pub budget: Option<u64>,
    /// `ST_BUDGET` equivalent.
    pub st_budget: Option<u64>,
    /// `WARMUP` equivalent.
    pub warmup: Option<u64>,
    /// `SEED` equivalent.
    pub seed: Option<u64>,
    /// `FUZZ_CASES` equivalent (conform).
    pub fuzz_cases: Option<u64>,
    /// `FUZZ_SEED` equivalent (conform).
    pub fuzz_seed: Option<u64>,
    /// `CHECK_THREADS` equivalent (check; 1..=4).
    pub check_threads: Option<u64>,
    /// `CHECK_L2` equivalent (check; 1..=4).
    pub check_l2: Option<u64>,
}

impl SpecKnobs {
    /// Overlays `over` (higher precedence) on `self`.
    fn overlay(self, over: SpecKnobs) -> SpecKnobs {
        SpecKnobs {
            budget: over.budget.or(self.budget),
            st_budget: over.st_budget.or(self.st_budget),
            warmup: over.warmup.or(self.warmup),
            seed: over.seed.or(self.seed),
            fuzz_cases: over.fuzz_cases.or(self.fuzz_cases),
            fuzz_seed: over.fuzz_seed.or(self.fuzz_seed),
            check_threads: over.check_threads.or(self.check_threads),
            check_l2: over.check_l2.or(self.check_l2),
        }
    }
}

/// A fully parsed and resolved experiment spec.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Stable experiment id (`id = "..."`; names the spec file and,
    /// for suites, the `results/<id>.txt` artifact).
    pub id: String,
    /// Output kind.
    pub kind: SpecKind,
    /// Figure/table title, where the kind renders one.
    pub title: Option<String>,
    /// Machine registry id.
    pub machine_id: String,
    /// Fetch-policy registry id overriding the machine's own policy.
    pub fetch_policy_id: Option<String>,
    /// The resolved machine (fetch-policy override applied).
    pub machine: MachineConfig,
    /// Normalization-reference scheme id.
    pub norm_id: String,
    /// The resolved normalization reference.
    pub norm: RobConfig,
    /// The schemes to run, resolved, in `schemes = [...]` order.
    pub variants: Vec<SpecVariant>,
    /// Local `[scheme.<name>]` sections, in file order (for re-render).
    pub custom_schemes: Vec<SchemeOverrides>,
    /// Mix selection: `None` = all 11 paper mixes (either omitted or
    /// the `all` mix-set id), `Some` = an explicit index list.
    pub mixes: Option<Vec<usize>>,
    /// Knob-preset id (`knobs = "..."`), if given.
    pub knobs_id: Option<String>,
    /// Explicit `[knobs]` values (preset *not* folded in — see
    /// [`ExperimentSpec::knobs`]).
    pub knob_overrides: SpecKnobs,
    /// Histogram comparison: the scheme whose pooled mean the main
    /// histogram is compared against, plus the display label of the
    /// reference ("mean dependents vs {label}: …").
    pub compare: Option<(SpecVariant, String)>,
    /// Sibling spec ids (suite / sweep-bench kinds).
    pub specs: Vec<String>,
    /// FNV fingerprint of the canonical rendering — the spec's
    /// identity in the journal universe.
    pub fingerprint: String,
}

impl ExperimentSpec {
    /// Loads and parses a spec file. I/O failures are typed
    /// [`SimError::InvalidConfig`] (a missing spec is an invocation
    /// mistake, like a malformed knob).
    pub fn load(path: &Path) -> Result<ExperimentSpec, SimError> {
        let file = path.display().to_string();
        let text = std::fs::read_to_string(path).map_err(|e| SimError::InvalidConfig {
            reason: format!("cannot read experiment spec {file}: {e}"),
        })?;
        ExperimentSpec::parse(&file, &text).map_err(SimError::from)
    }

    /// Parses spec `text` (from `file`, used in diagnostics).
    pub fn parse(file: &str, text: &str) -> Result<ExperimentSpec, SpecError> {
        let doc = toml::parse(file, text)?;
        resolve(file, &doc)
    }

    /// The effective mix list (`None` in [`ExperimentSpec::mixes`]
    /// means all 11 paper mixes).
    pub fn effective_mixes(&self) -> Vec<usize> {
        self.mixes
            .clone()
            .unwrap_or_else(|| crate::figures::ALL_MIXES.to_vec())
    }

    /// The effective spec-side knob values: the `knobs = "<preset>"`
    /// preset overlaid with the explicit `[knobs]` section.
    pub fn knobs(&self) -> SpecKnobs {
        let preset = match &self.knobs_id {
            None => SpecKnobs::default(),
            Some(id) => {
                let p = registry::knob_preset(id).expect("validated at parse time");
                SpecKnobs {
                    budget: p.budget,
                    st_budget: p.st_budget,
                    warmup: p.warmup,
                    seed: p.seed,
                    ..SpecKnobs::default()
                }
            }
        };
        preset.overlay(self.knob_overrides)
    }

    /// Canonical rendering: a normal-form spec file that re-parses to
    /// an equivalent spec. Key order, spacing and quoting are fixed,
    /// and omitted-vs-defaulted distinctions are preserved, so
    /// `render(parse(render(parse(x)))) == render(parse(x))` holds
    /// byte-for-byte (the round-trip stability test) and the FNV hash
    /// of this text is the spec's journal-universe identity.
    pub fn render(&self) -> String {
        let mut out = String::from("[experiment]\n");
        let kv = |out: &mut String, k: &str, v: &Value| {
            let _ = writeln!(out, "{k} = {}", toml::render_value(v));
        };
        kv(&mut out, "id", &Value::Str(self.id.clone()));
        if let Some(t) = &self.title {
            kv(&mut out, "title", &Value::Str(t.clone()));
        }
        kv(&mut out, "kind", &Value::Str(self.kind.as_str().into()));
        kv(&mut out, "machine", &Value::Str(self.machine_id.clone()));
        if let Some(fp) = &self.fetch_policy_id {
            kv(&mut out, "fetch_policy", &Value::Str(fp.clone()));
        }
        kv(&mut out, "norm", &Value::Str(self.norm_id.clone()));
        if !self.variants.is_empty() {
            let ids = self
                .variants
                .iter()
                .map(|v| Value::Str(v.name.clone()))
                .collect();
            kv(&mut out, "schemes", &Value::Array(ids));
        }
        match &self.mixes {
            None => {}
            Some(list) => {
                let ids = list.iter().map(|&m| Value::Int(m as u64)).collect();
                kv(&mut out, "mixes", &Value::Array(ids));
            }
        }
        if let Some(id) = &self.knobs_id {
            kv(&mut out, "knobs", &Value::Str(id.clone()));
        }
        if let Some((variant, label)) = &self.compare {
            kv(&mut out, "compare", &Value::Str(variant.name.clone()));
            kv(&mut out, "compare_label", &Value::Str(label.clone()));
        }
        if !self.specs.is_empty() {
            let ids = self.specs.iter().map(|s| Value::Str(s.clone())).collect();
            kv(&mut out, "specs", &Value::Array(ids));
        }
        let k = &self.knob_overrides;
        let knob_items: Vec<(&str, Option<u64>)> = vec![
            ("budget", k.budget),
            ("st_budget", k.st_budget),
            ("warmup", k.warmup),
            ("seed", k.seed),
            ("fuzz_cases", k.fuzz_cases),
            ("fuzz_seed", k.fuzz_seed),
            ("check_threads", k.check_threads),
            ("check_l2", k.check_l2),
        ];
        if knob_items.iter().any(|(_, v)| v.is_some()) {
            out.push_str("\n[knobs]\n");
            for (key, v) in knob_items {
                if let Some(v) = v {
                    kv(&mut out, key, &Value::Int(v));
                }
            }
        }
        for cs in &self.custom_schemes {
            let _ = writeln!(out, "\n[scheme.{}]", cs.name);
            kv(&mut out, "base", &Value::Str(cs.base.clone()));
            if let Some(l) = &cs.label {
                kv(&mut out, "label", &Value::Str(l.clone()));
            }
            for (key, v) in [
                ("l1_entries", cs.l1_entries),
                ("l2_entries", cs.l2_entries),
                ("dod_threshold", cs.dod_threshold),
                ("recheck_interval", cs.recheck_interval),
                ("cdr_delay", cs.cdr_delay),
            ] {
                if let Some(v) = v {
                    kv(&mut out, key, &Value::Int(v));
                }
            }
            if let Some(r) = &cs.release {
                kv(&mut out, "release", &Value::Str(r.clone()));
            }
            for (key, v) in [
                ("require_oldest", cs.require_oldest),
                ("require_full", cs.require_full),
            ] {
                if let Some(v) = v {
                    kv(&mut out, key, &Value::Bool(v));
                }
            }
            if let Some(p) = &cs.predictor {
                kv(&mut out, "predictor", &Value::Str(p.clone()));
            }
        }
        out
    }
}

/// Typed accessors over a parsed item, with mismatch diagnostics.
fn expect_str<'a>(file: &str, item: &'a Item) -> Result<&'a str, SpecError> {
    match &item.value {
        Value::Str(s) => Ok(s),
        other => Err(mismatch(file, item, "string", other)),
    }
}

fn expect_int(file: &str, item: &Item) -> Result<u64, SpecError> {
    match item.value {
        Value::Int(n) => Ok(n),
        ref other => Err(mismatch(file, item, "integer", other)),
    }
}

fn expect_bool(file: &str, item: &Item) -> Result<bool, SpecError> {
    match item.value {
        Value::Bool(b) => Ok(b),
        ref other => Err(mismatch(file, item, "boolean", other)),
    }
}

fn expect_str_array(file: &str, item: &Item) -> Result<Vec<String>, SpecError> {
    let Value::Array(items) = &item.value else {
        return Err(mismatch(file, item, "array of strings", &item.value));
    };
    items
        .iter()
        .map(|v| match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(mismatch(file, item, "array of strings", other)),
        })
        .collect()
}

fn mismatch(file: &str, item: &Item, want: &str, got: &Value) -> SpecError {
    SpecError {
        file: file.into(),
        line: item.line,
        message: format!(
            "key `{}`: expected {want}, found {}",
            item.key,
            got.type_name()
        ),
    }
}

fn spec_err(file: &str, line: usize, message: String) -> SpecError {
    SpecError {
        file: file.into(),
        line,
        message,
    }
}

/// Resolves a parsed document into an [`ExperimentSpec`].
#[allow(clippy::too_many_lines)]
fn resolve(file: &str, doc: &toml::Doc) -> Result<ExperimentSpec, SpecError> {
    // --- sections ---------------------------------------------------
    let mut experiment: Option<&Section> = None;
    let mut knobs_section: Option<&Section> = None;
    let mut scheme_sections: Vec<&Section> = Vec::new();
    for s in &doc.sections {
        if s.name == "experiment" {
            experiment = Some(s);
        } else if s.name == "knobs" {
            knobs_section = Some(s);
        } else if let Some(name) = s.name.strip_prefix("scheme.") {
            if name.is_empty() {
                return Err(spec_err(file, s.line, "empty `[scheme.]` name".into()));
            }
            scheme_sections.push(s);
        } else {
            return Err(spec_err(
                file,
                s.line,
                format!(
                    "unknown section `[{}]` (expected `[experiment]`, `[knobs]` \
                     or `[scheme.<name>]`)",
                    s.name
                ),
            ));
        }
    }
    let Some(exp) = experiment else {
        return Err(spec_err(file, 1, "missing `[experiment]` section".into()));
    };

    // --- local scheme variants --------------------------------------
    let mut custom_schemes: Vec<SchemeOverrides> = Vec::new();
    for s in &scheme_sections {
        custom_schemes.push(resolve_scheme_section(file, s)?);
    }

    // --- [experiment] keys ------------------------------------------
    let mut id = None;
    let mut title = None;
    let mut kind = None;
    let mut machine_id = "icpp08".to_string();
    let mut fetch_policy_id = None;
    let mut norm_id = "baseline-32".to_string();
    let mut scheme_ids: Option<(Vec<String>, usize)> = None;
    let mut mixes: Option<Vec<usize>> = None;
    let mut mixes_given = false;
    let mut knobs_id = None;
    let mut compare_id: Option<(String, usize)> = None;
    let mut compare_label: Option<String> = None;
    let mut specs: Vec<String> = Vec::new();
    for item in &exp.items {
        match item.key.as_str() {
            "id" => id = Some(expect_str(file, item)?.to_string()),
            "title" => title = Some(expect_str(file, item)?.to_string()),
            "kind" => {
                let s = expect_str(file, item)?;
                kind = Some(SpecKind::parse(s).ok_or_else(|| {
                    spec_err(
                        file,
                        item.line,
                        format!(
                            "unknown kind `{s}` (known: {})",
                            SpecKind::ALL
                                .iter()
                                .map(|(n, _)| *n)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    )
                })?);
            }
            "machine" => {
                let s = expect_str(file, item)?;
                registry::machine(s).map_err(|m| spec_err(file, item.line, m))?;
                machine_id = s.to_string();
            }
            "fetch_policy" => {
                let s = expect_str(file, item)?;
                registry::fetch_policy(s).map_err(|m| spec_err(file, item.line, m))?;
                fetch_policy_id = Some(s.to_string());
            }
            "norm" => {
                let s = expect_str(file, item)?;
                registry::rob_config(s).map_err(|m| spec_err(file, item.line, m))?;
                norm_id = s.to_string();
            }
            "schemes" => {
                scheme_ids = Some((expect_str_array(file, item)?, item.line));
            }
            "mixes" => {
                mixes_given = true;
                mixes = resolve_mixes(file, item)?;
            }
            "knobs" => {
                let s = expect_str(file, item)?;
                registry::knob_preset(s).map_err(|m| spec_err(file, item.line, m))?;
                knobs_id = Some(s.to_string());
            }
            "compare" => {
                compare_id = Some((expect_str(file, item)?.to_string(), item.line));
            }
            "compare_label" => compare_label = Some(expect_str(file, item)?.to_string()),
            "specs" => specs = expect_str_array(file, item)?,
            other => {
                return Err(spec_err(
                    file,
                    item.line,
                    format!("unknown key `{other}` in `[experiment]`"),
                ));
            }
        }
    }
    let id = id.ok_or_else(|| spec_err(file, exp.line, "missing `id` in `[experiment]`".into()))?;
    let kind =
        kind.ok_or_else(|| spec_err(file, exp.line, "missing `kind` in `[experiment]`".into()))?;

    // --- [knobs] -----------------------------------------------------
    let mut knob_overrides = SpecKnobs::default();
    if let Some(sec) = knobs_section {
        for item in &sec.items {
            let v = expect_int(file, item)?;
            match item.key.as_str() {
                "budget" => knob_overrides.budget = Some(v),
                "st_budget" => knob_overrides.st_budget = Some(v),
                "warmup" => knob_overrides.warmup = Some(v),
                "seed" => knob_overrides.seed = Some(v),
                "fuzz_cases" => knob_overrides.fuzz_cases = Some(v),
                "fuzz_seed" => knob_overrides.fuzz_seed = Some(v),
                "check_threads" | "check_l2" => {
                    if !(1..=4).contains(&v) {
                        return Err(spec_err(
                            file,
                            item.line,
                            format!("key `{}`: {v} out of range 1..=4", item.key),
                        ));
                    }
                    if item.key == "check_threads" {
                        knob_overrides.check_threads = Some(v);
                    } else {
                        knob_overrides.check_l2 = Some(v);
                    }
                }
                other => {
                    return Err(spec_err(
                        file,
                        item.line,
                        format!("unknown key `{other}` in `[knobs]`"),
                    ));
                }
            }
        }
    }

    // --- per-kind shape checks --------------------------------------
    if kind.needs_title() && title.is_none() {
        return Err(spec_err(
            file,
            exp.line,
            format!("kind `{}` requires a `title`", kind.as_str()),
        ));
    }
    if !kind.uses_schemes() {
        if let Some((_, line)) = &scheme_ids {
            return Err(spec_err(
                file,
                *line,
                format!("kind `{}` does not use `schemes`", kind.as_str()),
            ));
        }
    }
    if kind.uses_specs() {
        if specs.is_empty() {
            return Err(spec_err(
                file,
                exp.line,
                format!("kind `{}` requires a non-empty `specs` list", kind.as_str()),
            ));
        }
    } else if !specs.is_empty() {
        return Err(spec_err(
            file,
            exp.line,
            format!("kind `{}` does not use `specs`", kind.as_str()),
        ));
    }

    // --- scheme resolution ------------------------------------------
    let lookup = |name: &str, line: usize| -> Result<SpecVariant, SpecError> {
        if let Some(cs) = custom_schemes.iter().find(|c| c.name == name) {
            return build_custom(file, cs);
        }
        let config = registry::rob_config(name).map_err(|m| {
            spec_err(
                file,
                line,
                format!("scheme `{name}` is neither a local `[scheme.{name}]` section nor a registry id: {m}"),
            )
        })?;
        Ok(SpecVariant {
            name: name.to_string(),
            label: config.label(),
            config,
        })
    };
    let mut variants = Vec::new();
    if let Some((ids, line)) = &scheme_ids {
        if ids.is_empty() {
            return Err(spec_err(file, *line, "`schemes` must not be empty".into()));
        }
        if kind == SpecKind::Histogram && ids.len() != 1 {
            return Err(spec_err(
                file,
                *line,
                format!(
                    "kind `histogram` takes exactly one scheme, got {}",
                    ids.len()
                ),
            ));
        }
        for name in ids {
            variants.push(lookup(name, *line)?);
        }
    } else if kind.uses_schemes() {
        return Err(spec_err(
            file,
            exp.line,
            format!("kind `{}` requires a `schemes` list", kind.as_str()),
        ));
    }
    // Local sections that nothing references are dead weight — refuse
    // them so a typo'd reference cannot silently drop a variant.
    for cs in &custom_schemes {
        let referenced = variants.iter().any(|v| v.name == cs.name)
            || compare_id.as_ref().is_some_and(|(c, _)| *c == cs.name);
        if !referenced {
            let line = scheme_sections
                .iter()
                .find(|s| s.name.strip_prefix("scheme.") == Some(cs.name.as_str()))
                .map_or(exp.line, |s| s.line);
            return Err(spec_err(
                file,
                line,
                format!("`[scheme.{}]` is never referenced by `schemes`", cs.name),
            ));
        }
    }

    // --- histogram comparison ---------------------------------------
    let compare = match (kind, compare_id, compare_label) {
        (_, None, None) => None,
        (SpecKind::Histogram, Some((cid, cline)), Some(label)) => {
            Some((lookup(&cid, cline)?, label))
        }
        (SpecKind::Histogram, Some((_, cline)), None) => {
            return Err(spec_err(
                file,
                cline,
                "`compare` requires a `compare_label`".into(),
            ));
        }
        (_, _, _) => {
            return Err(spec_err(
                file,
                exp.line,
                format!(
                    "`compare`/`compare_label` are only valid for kind `histogram` \
                     (this spec is `{}`)",
                    kind.as_str()
                ),
            ));
        }
    };

    // --- machine ----------------------------------------------------
    let mut machine = registry::machine(&machine_id).expect("validated above");
    if let Some(fp) = &fetch_policy_id {
        machine.fetch_policy = registry::fetch_policy(fp).expect("validated above");
    }
    let norm = registry::rob_config(&norm_id).expect("validated above");

    let mut spec = ExperimentSpec {
        id,
        kind,
        title,
        machine_id,
        fetch_policy_id,
        machine,
        norm_id,
        norm,
        variants,
        custom_schemes,
        mixes: if mixes_given { mixes } else { None },
        knobs_id,
        knob_overrides,
        compare,
        specs,
        fingerprint: String::new(),
    };
    spec.fingerprint = journal::fingerprint_str(&spec.render());
    Ok(spec)
}

/// Parses `mixes = "all"` or `mixes = [1, 2, 9]`. `Ok(None)` encodes
/// the full paper set (the `all` id).
fn resolve_mixes(file: &str, item: &Item) -> Result<Option<Vec<usize>>, SpecError> {
    match &item.value {
        Value::Str(s) => {
            registry::mix_set(s).map_err(|m| spec_err(file, item.line, m))?;
            Ok(None)
        }
        Value::Array(items) => {
            let mut out = Vec::new();
            for v in items {
                let Value::Int(n) = v else {
                    return Err(mismatch(file, item, "array of integers", v));
                };
                if !(1..=11).contains(n) {
                    return Err(spec_err(
                        file,
                        item.line,
                        format!("mix index {n} out of range 1..=11"),
                    ));
                }
                out.push(*n as usize);
            }
            if out.is_empty() {
                return Err(spec_err(
                    file,
                    item.line,
                    "`mixes` must not be empty".into(),
                ));
            }
            Ok(Some(out))
        }
        other => Err(mismatch(file, item, "mix-set id or array", other)),
    }
}

/// Parses one `[scheme.<name>]` section into typed overrides.
fn resolve_scheme_section(file: &str, s: &Section) -> Result<SchemeOverrides, SpecError> {
    let name = s
        .name
        .strip_prefix("scheme.")
        .expect("caller matched the prefix");
    let mut cs = SchemeOverrides {
        name: name.to_string(),
        ..SchemeOverrides::default()
    };
    for item in &s.items {
        match item.key.as_str() {
            "base" => cs.base = expect_str(file, item)?.to_string(),
            "label" => cs.label = Some(expect_str(file, item)?.to_string()),
            "l1_entries" => cs.l1_entries = Some(expect_int(file, item)?),
            "l2_entries" => cs.l2_entries = Some(expect_int(file, item)?),
            "dod_threshold" => cs.dod_threshold = Some(expect_int(file, item)?),
            "recheck_interval" => cs.recheck_interval = Some(expect_int(file, item)?),
            "release" => cs.release = Some(expect_str(file, item)?.to_string()),
            "cdr_delay" => cs.cdr_delay = Some(expect_int(file, item)?),
            "require_oldest" => cs.require_oldest = Some(expect_bool(file, item)?),
            "require_full" => cs.require_full = Some(expect_bool(file, item)?),
            "predictor" => cs.predictor = Some(expect_str(file, item)?.to_string()),
            other => {
                return Err(spec_err(
                    file,
                    item.line,
                    format!("unknown key `{other}` in `[scheme.{name}]`"),
                ));
            }
        }
    }
    if cs.base.is_empty() {
        return Err(spec_err(
            file,
            s.line,
            format!("`[scheme.{name}]` requires a `base` registry id"),
        ));
    }
    // Validate ids eagerly so the error points at this section even if
    // the variant is only referenced later.
    registry::rob_config(&cs.base).map_err(|m| spec_err(file, s.line, m))?;
    if let Some(r) = &cs.release {
        parse_release(r).map_err(|m| spec_err(file, s.line, m))?;
    }
    if let Some(p) = &cs.predictor {
        parse_predictor(p).map_err(|m| spec_err(file, s.line, m))?;
    }
    build_custom(file, &cs).map_err(|mut e| {
        // Shape errors discovered at build time (e.g. two-level
        // overrides on a baseline) anchor to the section header.
        e.line = s.line;
        e
    })?;
    Ok(cs)
}

fn parse_release(id: &str) -> Result<ReleasePolicy, String> {
    match id {
        "trigger-serviced" => Ok(ReleasePolicy::TriggerServiced),
        "drain-and-no-miss" => Ok(ReleasePolicy::DrainAndNoMiss),
        "drain-only" => Ok(ReleasePolicy::DrainOnly),
        _ => Err(format!(
            "unknown release policy `{id}` (known: trigger-serviced, drain-and-no-miss, \
             drain-only)"
        )),
    }
}

fn parse_predictor(id: &str) -> Result<DodPredictorKind, String> {
    match id {
        "last-value" => Ok(DodPredictorKind::LastValue),
        "threshold-bit" => Ok(DodPredictorKind::ThresholdBit),
        "path" => Ok(DodPredictorKind::Path),
        _ => Err(format!(
            "unknown predictor `{id}` (known: last-value, threshold-bit, path)"
        )),
    }
}

/// Instantiates a local variant: registry base + overrides.
fn build_custom(file: &str, cs: &SchemeOverrides) -> Result<SpecVariant, SpecError> {
    let base = registry::rob_config(&cs.base).map_err(|m| spec_err(file, 0, m))?;
    let two_level_override = cs.l1_entries.is_some()
        || cs.l2_entries.is_some()
        || cs.dod_threshold.is_some()
        || cs.recheck_interval.is_some()
        || cs.release.is_some()
        || cs.cdr_delay.is_some()
        || cs.require_oldest.is_some()
        || cs.require_full.is_some()
        || cs.predictor.is_some();
    let config = match base {
        RobConfig::Baseline(n) => {
            if two_level_override {
                return Err(spec_err(
                    file,
                    0,
                    format!(
                        "`[scheme.{}]` applies two-level overrides to baseline `{}`",
                        cs.name, cs.base
                    ),
                ));
            }
            RobConfig::Baseline(n)
        }
        RobConfig::TwoLevel(mut tl) => {
            apply_two_level(file, cs, &mut tl)?;
            RobConfig::TwoLevel(tl)
        }
    };
    let label = cs.label.clone().unwrap_or_else(|| config.label());
    Ok(SpecVariant {
        name: cs.name.clone(),
        label,
        config,
    })
}

/// Applies the override fields to a two-level base configuration.
fn apply_two_level(
    file: &str,
    cs: &SchemeOverrides,
    tl: &mut TwoLevelConfig,
) -> Result<(), SpecError> {
    let err = |m: String| spec_err(file, 0, m);
    if let Some(n) = cs.l1_entries {
        tl.l1_entries = n as usize;
    }
    if let Some(n) = cs.l2_entries {
        tl.l2_entries = n as usize;
    }
    if let Some(n) = cs.dod_threshold {
        tl.dod_threshold =
            u32::try_from(n).map_err(|_| err(format!("dod_threshold {n} exceeds u32")))?;
    }
    if let Some(n) = cs.recheck_interval {
        tl.recheck_interval = n;
    }
    if let Some(r) = &cs.release {
        tl.release = parse_release(r).map_err(err)?;
    }
    // Scheme-changing overrides are mutually exclusive: a variant is
    // CDR *or* predictive *or* a reactive tweak, never a mix.
    let scheme_knobs = [
        cs.cdr_delay.is_some(),
        cs.predictor.is_some(),
        cs.require_oldest.is_some() || cs.require_full.is_some(),
    ];
    if scheme_knobs.iter().filter(|&&b| b).count() > 1 {
        return Err(err(format!(
            "`[scheme.{}]` mixes cdr_delay / predictor / require_* overrides; \
             pick one scheme family",
            cs.name
        )));
    }
    if let Some(delay) = cs.cdr_delay {
        tl.scheme = Scheme::CountDelayed { delay };
    } else if let Some(p) = &cs.predictor {
        tl.scheme = Scheme::Predictive {
            predictor: parse_predictor(p).map_err(err)?,
        };
    } else if cs.require_oldest.is_some() || cs.require_full.is_some() {
        let Scheme::Reactive {
            require_oldest: mut oldest,
            require_full: mut full,
        } = tl.scheme
        else {
            return Err(err(format!(
                "`[scheme.{}]` sets require_* on a non-reactive base",
                cs.name
            )));
        };
        if let Some(o) = cs.require_oldest {
            oldest = o;
        }
        if let Some(f) = cs.require_full {
            full = f;
        }
        tl.scheme = Scheme::Reactive {
            require_oldest: oldest,
            require_full: full,
        };
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2: &str = r#"
# Figure 2 spec
[experiment]
id = "fig2"
title = "Figure 2: FT with 2-Level R-ROB"
kind = "figure"
norm = "baseline-32"
schemes = ["baseline-32", "baseline-128", "r-rob-16"]
"#;

    #[test]
    fn fig2_spec_matches_the_legacy_wiring() {
        let spec = ExperimentSpec::parse("fig2.toml", FIG2).unwrap();
        assert_eq!(spec.id, "fig2");
        assert_eq!(spec.kind, SpecKind::Figure);
        assert_eq!(spec.machine_id, "icpp08");
        let fps: Vec<String> = spec
            .variants
            .iter()
            .map(|v| v.config.fingerprint())
            .collect();
        assert_eq!(
            fps,
            vec![
                RobConfig::Baseline(32).fingerprint(),
                RobConfig::Baseline(128).fingerprint(),
                RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)).fingerprint(),
            ]
        );
        assert_eq!(spec.variants[2].label, "2-Level R-ROB16");
        assert_eq!(spec.effective_mixes(), crate::figures::ALL_MIXES.to_vec());
        assert!(!spec.fingerprint.is_empty());
    }

    #[test]
    fn render_is_canonical_and_stable() {
        let spec = ExperimentSpec::parse("fig2.toml", FIG2).unwrap();
        let first = spec.render();
        let respec = ExperimentSpec::parse("fig2.toml", &first).unwrap();
        assert_eq!(respec.render(), first, "render∘parse must be idempotent");
        assert_eq!(respec.fingerprint, spec.fingerprint);
        // Comments and formatting do not change the identity…
        let noisy = format!("# noise\n\n{FIG2}"); // leading comments
        let noisy_spec = ExperimentSpec::parse("fig2.toml", &noisy).unwrap();
        assert_eq!(noisy_spec.fingerprint, spec.fingerprint);
        // …but a semantic edit does.
        let edited = FIG2.replace("r-rob-16", "r-rob-8");
        let edited_spec = ExperimentSpec::parse("fig2.toml", &edited).unwrap();
        assert_ne!(edited_spec.fingerprint, spec.fingerprint);
    }

    #[test]
    fn custom_scheme_sections_build_derived_configs() {
        let text = r#"
[experiment]
id = "abl"
title = "Ablation"
kind = "figure"
schemes = ["paper", "l2-192", "cdr-8"]

[scheme.paper]
base = "r-rob-16"
label = "R-ROB16 (paper)"

[scheme.l2-192]
base = "r-rob-16"
label = "L2=192"
l2_entries = 192

[scheme.cdr-8]
base = "cdr-rob-15"
label = "CDR delay=8"
cdr_delay = 8
"#;
        let spec = ExperimentSpec::parse("abl.toml", text).unwrap();
        assert_eq!(spec.variants[0].label, "R-ROB16 (paper)");
        assert_eq!(
            spec.variants[0].config.fingerprint(),
            RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)).fingerprint()
        );
        let mut l2 = TwoLevelConfig::r_rob(16);
        l2.l2_entries = 192;
        assert_eq!(
            spec.variants[1].config.fingerprint(),
            RobConfig::TwoLevel(l2).fingerprint()
        );
        let mut cdr = TwoLevelConfig::cdr_rob(15);
        cdr.scheme = Scheme::CountDelayed { delay: 8 };
        assert_eq!(
            spec.variants[2].config.fingerprint(),
            RobConfig::TwoLevel(cdr).fingerprint()
        );
        // Round-trip keeps the custom sections.
        let re = ExperimentSpec::parse("abl.toml", &spec.render()).unwrap();
        assert_eq!(re.render(), spec.render());
    }

    #[test]
    fn typed_errors_name_the_offending_key_and_line() {
        let cases: &[(&str, usize, &str)] = &[
            (
                "[experiment]\nid = \"x\"\nkind = \"figure\"\ntitle = \"t\"\n\
                 schemes = [\"r-rob-16\"]\nbudget = 1\n",
                6,
                "unknown key `budget`",
            ),
            (
                "[experiment]\nid = \"x\"\nkind = \"figure\"\ntitle = \"t\"\n\
                 schemes = [\"q-rob-16\"]\n",
                5,
                "unknown scheme id `q-rob-16`",
            ),
            (
                "[experiment]\nid = \"x\"\nkind = \"figure\"\ntitle = 7\n",
                4,
                "key `title`: expected string, found integer",
            ),
            (
                "[experiment]\nid = \"x\"\nkind = \"nope\"\n",
                3,
                "unknown kind `nope`",
            ),
            (
                "[experiment]\nid = \"x\"\nkind = \"table2\"\nschemes = [\"r-rob-16\"]\n",
                4,
                "does not use `schemes`",
            ),
            (
                "[experiment]\nid = \"x\"\nkind = \"check\"\n\n[knobs]\ncheck_threads = 9\n",
                6,
                "out of range 1..=4",
            ),
            (
                "[experiment]\nid = \"x\"\nkind = \"figure\"\ntitle = \"t\"\n\
                 schemes = [\"v\"]\n\n[scheme.v]\nbase = \"baseline-32\"\nl2_entries = 9\n",
                7,
                "two-level overrides to baseline",
            ),
            (
                "[experiment]\nid = \"x\"\nkind = \"figure\"\ntitle = \"t\"\n\
                 schemes = [\"r-rob-16\"]\n\n[scheme.dead]\nbase = \"r-rob-16\"\n",
                7,
                "never referenced",
            ),
            (
                "[experiment]\nid = \"x\"\nkind = \"figure\"\ntitle = \"t\"\n\
                 schemes = [\"r-rob-16\"]\nmixes = [0]\n",
                6,
                "out of range 1..=11",
            ),
        ];
        for &(text, line, frag) in cases {
            let e = ExperimentSpec::parse("bad.toml", text).unwrap_err();
            assert_eq!(e.line, line, "{text:?} -> {e}");
            assert!(e.message.contains(frag), "{text:?} -> {e}");
            let sim: SimError = e.into();
            assert_eq!(sim.kind(), "invalid-config");
            assert!(sim.to_string().contains("bad.toml:"), "{sim}");
        }
    }

    #[test]
    fn duplicate_section_is_an_invalid_config() {
        let text = "[experiment]\nid = \"x\"\nkind = \"table2\"\n[experiment]\n";
        let e = ExperimentSpec::parse("dup.toml", text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("duplicate section"), "{e}");
    }

    #[test]
    fn knob_presets_overlay_under_explicit_knobs() {
        let text = "[experiment]\nid = \"x\"\nkind = \"table2\"\nknobs = \"ci\"\n\
                    \n[knobs]\nwarmup = 5000\n";
        let spec = ExperimentSpec::parse("k.toml", text).unwrap();
        let k = spec.knobs();
        assert_eq!(k.budget, Some(8_000), "preset value");
        assert_eq!(k.warmup, Some(5_000), "[knobs] beats the preset");
        assert_eq!(k.seed, Some(42));
        assert_eq!(k.fuzz_cases, None);
    }

    #[test]
    fn fetch_policy_override_lands_in_the_machine() {
        let text = "[experiment]\nid = \"x\"\nkind = \"table1\"\nfetch_policy = \"icount\"\n";
        let spec = ExperimentSpec::parse("m.toml", text).unwrap();
        assert!(matches!(
            spec.machine.fetch_policy,
            smtsim_pipeline::FetchPolicyKind::Icount
        ));
        // The fingerprint sees the override (it is byte-affecting).
        let plain =
            ExperimentSpec::parse("m.toml", "[experiment]\nid = \"x\"\nkind = \"table1\"\n")
                .unwrap();
        assert_ne!(spec.fingerprint, plain.fingerprint);
    }

    #[test]
    fn histogram_compare_requires_label_and_single_scheme() {
        let ok = "[experiment]\nid = \"fig3\"\ntitle = \"t\"\nkind = \"histogram\"\n\
                  schemes = [\"r-rob-16\"]\ncompare = \"baseline-32\"\n\
                  compare_label = \"Figure 1\"\n";
        let spec = ExperimentSpec::parse("h.toml", ok).unwrap();
        let (cmp, label) = spec.compare.as_ref().unwrap();
        assert_eq!(cmp.name, "baseline-32");
        assert_eq!(label, "Figure 1");
        let e = ExperimentSpec::parse(
            "h.toml",
            "[experiment]\nid = \"x\"\ntitle = \"t\"\nkind = \"histogram\"\n\
             schemes = [\"r-rob-16\", \"p-rob-5\"]\n",
        )
        .unwrap_err();
        assert!(e.message.contains("exactly one scheme"), "{e}");
        let e = ExperimentSpec::parse(
            "h.toml",
            "[experiment]\nid = \"x\"\ntitle = \"t\"\nkind = \"histogram\"\n\
             schemes = [\"r-rob-16\"]\ncompare = \"baseline-32\"\n",
        )
        .unwrap_err();
        assert!(e.message.contains("compare_label"), "{e}");
    }
}
