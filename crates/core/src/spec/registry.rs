//! The experiment registry: stable string ids → simulator objects.
//!
//! Every name an `experiments/*.toml` spec may reference resolves
//! here, in one place, so adding a machine, scheme family, fetch
//! policy, mix set or knob preset is a registry edit — not a new
//! figure bin. Ids are kebab-case and *stable*: they appear in
//! committed spec files and (via the spec fingerprint) in journal
//! universe fingerprints, so renaming one is a breaking change.
//!
//! Namespaces:
//!
//! * **machines** — `icpp08` (the Table 1 SMT machine), `icpp08-single`
//!   (its single-threaded variant);
//! * **schemes** — `<family>-<threshold>` where the family is
//!   `baseline`, `r-rob`, `relaxed-r-rob`, `cdr-rob` or `p-rob` and
//!   the threshold is the ROB size (baseline) or DoD threshold
//!   (two-level), e.g. `baseline-32`, `r-rob-16`, `p-rob-5`;
//! * **fetch policies** — `dcra`, `icount`, `round-robin`, `stall`,
//!   `flush` ([`smtsim_pipeline::FetchPolicyKind`]);
//! * **mix sets** — `all` (the 11 paper mixes); individual mixes are
//!   written as integer arrays in the spec itself;
//! * **knob presets** — `paper` (the committed-`results/` scale) and
//!   `ci` (the `xtask determinism` scale).
//!
//! Resolution errors are bare messages; the spec layer attaches
//! file/line context from the referencing TOML item.

use crate::experiment::RobConfig;
use crate::twolevel::TwoLevelConfig;
use smtsim_pipeline::{DcraConfig, FetchPolicyKind, MachineConfig};

/// The scheme families the registry can instantiate at any threshold.
const SCHEME_FAMILIES: &[&str] = &["baseline", "r-rob", "relaxed-r-rob", "cdr-rob", "p-rob"];

/// Knob values a preset or spec contributes; `None` = not specified
/// (the next precedence layer decides).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KnobPreset {
    /// Multithreaded commit budget (`BUDGET`).
    pub budget: Option<u64>,
    /// Single-threaded normalization budget (`ST_BUDGET`).
    pub st_budget: Option<u64>,
    /// Functional warm-up instructions (`WARMUP`).
    pub warmup: Option<u64>,
    /// Workload seed (`SEED`).
    pub seed: Option<u64>,
}

/// Resolves `id` to a machine configuration.
pub fn machine(id: &str) -> Result<MachineConfig, String> {
    match id {
        "icpp08" => Ok(MachineConfig::icpp08()),
        "icpp08-single" => Ok(MachineConfig::icpp08_single()),
        _ => Err(format!(
            "unknown machine id `{id}` (known: icpp08, icpp08-single)"
        )),
    }
}

/// Resolves `id` to a fetch policy.
pub fn fetch_policy(id: &str) -> Result<FetchPolicyKind, String> {
    match id {
        "dcra" => Ok(FetchPolicyKind::Dcra(DcraConfig::default())),
        "icount" => Ok(FetchPolicyKind::Icount),
        "round-robin" => Ok(FetchPolicyKind::RoundRobin),
        "stall" => Ok(FetchPolicyKind::Stall),
        "flush" => Ok(FetchPolicyKind::Flush),
        _ => Err(format!(
            "unknown fetch-policy id `{id}` (known: dcra, icount, round-robin, stall, flush)"
        )),
    }
}

/// Resolves a scheme id of the form `<family>-<threshold>` to a ROB
/// configuration (e.g. `baseline-32`, `r-rob-16`, `p-rob-5`).
pub fn rob_config(id: &str) -> Result<RobConfig, String> {
    let unknown = || {
        format!(
            "unknown scheme id `{id}` (expected `<family>-<n>` with family one of: {})",
            SCHEME_FAMILIES.join(", ")
        )
    };
    let dash = id.rfind('-').ok_or_else(unknown)?;
    let (family, digits) = (&id[..dash], &id[dash + 1..]);
    let n: u32 = digits.parse().map_err(|_| unknown())?;
    match family {
        "baseline" => Ok(RobConfig::Baseline(n as usize)),
        "r-rob" => Ok(RobConfig::TwoLevel(TwoLevelConfig::r_rob(n))),
        "relaxed-r-rob" => Ok(RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(n))),
        "cdr-rob" => Ok(RobConfig::TwoLevel(TwoLevelConfig::cdr_rob(n))),
        "p-rob" => Ok(RobConfig::TwoLevel(TwoLevelConfig::p_rob(n))),
        _ => Err(unknown()),
    }
}

/// Resolves a named mix set.
pub fn mix_set(id: &str) -> Result<Vec<usize>, String> {
    match id {
        "all" => Ok(crate::figures::ALL_MIXES.to_vec()),
        _ => Err(format!("unknown mix-set id `{id}` (known: all)")),
    }
}

/// Resolves a named knob preset.
pub fn knob_preset(id: &str) -> Result<KnobPreset, String> {
    match id {
        // The committed-`results/` scale: the documented defaults of
        // the BUDGET/WARMUP/SEED knobs.
        "paper" => Ok(KnobPreset {
            budget: Some(40_000),
            st_budget: None,
            warmup: Some(60_000),
            seed: Some(42),
        }),
        // The `xtask determinism` CI scale (tests/golden/ is recorded
        // here).
        "ci" => Ok(KnobPreset {
            budget: Some(8_000),
            st_budget: None,
            warmup: Some(10_000),
            seed: Some(42),
        }),
        _ => Err(format!("unknown knob-preset id `{id}` (known: paper, ci)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_ids_resolve_to_the_paper_configs() {
        // The registry must mint exactly the configurations the legacy
        // figure wiring used — fingerprints are the proof (they key
        // the normalization cache and the journal).
        for (id, legacy) in [
            ("baseline-32", RobConfig::Baseline(32)),
            ("baseline-128", RobConfig::Baseline(128)),
            ("r-rob-16", RobConfig::TwoLevel(TwoLevelConfig::r_rob(16))),
            (
                "relaxed-r-rob-15",
                RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)),
            ),
            (
                "cdr-rob-15",
                RobConfig::TwoLevel(TwoLevelConfig::cdr_rob(15)),
            ),
            ("p-rob-3", RobConfig::TwoLevel(TwoLevelConfig::p_rob(3))),
            ("p-rob-5", RobConfig::TwoLevel(TwoLevelConfig::p_rob(5))),
        ] {
            assert_eq!(
                rob_config(id).unwrap().fingerprint(),
                legacy.fingerprint(),
                "{id}"
            );
        }
    }

    #[test]
    fn unknown_ids_name_the_namespace() {
        assert!(machine("icpp09")
            .unwrap_err()
            .contains("unknown machine id"));
        assert!(rob_config("q-rob-16")
            .unwrap_err()
            .contains("unknown scheme id"));
        assert!(rob_config("r-rob")
            .unwrap_err()
            .contains("unknown scheme id"));
        assert!(rob_config("r-rob-x")
            .unwrap_err()
            .contains("unknown scheme id"));
        assert!(fetch_policy("lru")
            .unwrap_err()
            .contains("unknown fetch-policy id"));
        assert!(mix_set("some").unwrap_err().contains("unknown mix-set id"));
        assert!(knob_preset("huge")
            .unwrap_err()
            .contains("unknown knob-preset id"));
    }

    #[test]
    fn fetch_policies_cover_the_family() {
        assert!(matches!(
            fetch_policy("dcra").unwrap(),
            FetchPolicyKind::Dcra(_)
        ));
        assert!(matches!(
            fetch_policy("icount").unwrap(),
            FetchPolicyKind::Icount
        ));
        assert!(matches!(
            fetch_policy("flush").unwrap(),
            FetchPolicyKind::Flush
        ));
    }

    #[test]
    fn mix_set_all_is_the_paper_table() {
        assert_eq!(mix_set("all").unwrap(), crate::figures::ALL_MIXES.to_vec());
    }

    #[test]
    fn presets_carry_the_documented_scales() {
        let paper = knob_preset("paper").unwrap();
        assert_eq!(paper.budget, Some(40_000));
        assert_eq!(paper.warmup, Some(60_000));
        let ci = knob_preset("ci").unwrap();
        assert_eq!(ci.budget, Some(8_000));
        assert_eq!(ci.warmup, Some(10_000));
    }
}
