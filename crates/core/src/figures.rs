//! Regeneration of every figure and table in the paper's evaluation
//! (§5). Each function returns structured data; `report.rs` renders it
//! as text, and `smtsim-bench` wraps each in a binary and a Criterion
//! bench.

use crate::experiment::{Lab, MixRun, RobConfig, SweepCell};
use crate::metrics::mean;
use crate::twolevel::{Scheme, TwoLevelConfig};
use smtsim_pipeline::{DodHistogram, DodOracleStats, SimError};

/// All 11 paper mixes.
pub const ALL_MIXES: [usize; 11] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];

/// One line series across mixes (e.g. FT of one configuration).
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(mix name, value)` per mix; `None` marks a cell whose run
    /// failed (rendered as `n/a`).
    pub points: Vec<(String, Option<f64>)>,
    /// Arithmetic mean across the mixes that produced a value (the
    /// paper's "Average" bar). `NaN` when every cell failed.
    pub average: f64,
}

impl Series {
    /// Builds a series from per-mix run results, recording one
    /// single-line entry per failed cell into `failures`.
    fn from_results(
        label: impl Into<String>,
        results: Vec<(String, Result<MixRun, SimError>)>,
        failures: &mut Vec<String>,
    ) -> Self {
        let label = label.into();
        let mut points = Vec::with_capacity(results.len());
        for (mix_name, res) in results {
            match res {
                Ok(r) => points.push((mix_name, Some(r.ft))),
                Err(e) => {
                    failures.push(failure_line(&mix_name, &label, &e));
                    points.push((mix_name, None));
                }
            }
        }
        let present: Vec<f64> = points.iter().filter_map(|(_, v)| *v).collect();
        let average = if present.is_empty() {
            f64::NAN
        } else {
            mean(&present)
        };
        Series {
            label,
            points,
            average,
        }
    }
}

/// One compact line describing a failed cell (first line of the error —
/// deadlock snapshots are multi-line).
fn failure_line(mix_name: &str, label: &str, e: &SimError) -> String {
    let msg = e.to_string();
    let first = msg.lines().next().unwrap_or("error").to_string();
    format!("{mix_name} / {label}: {first}")
}

fn mix_name(m: usize) -> String {
    smtsim_workload::mix(m).name.to_string()
}

/// A bar-chart style figure: several series over the same mixes.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Figure title.
    pub title: String,
    /// The series.
    pub series: Vec<Series>,
    /// One line per failed `(mix, configuration)` cell; empty on a
    /// fully healthy sweep.
    pub failures: Vec<String>,
    /// The sweep-health footer, present only when the lab had any
    /// resilience feature active ([`Lab::resilience_active`]) — plain
    /// labs keep producing byte-identical committed goldens.
    pub health: Option<String>,
}

impl FigureData {
    /// Average improvement of `series[idx]` over `series[base]`, when
    /// both averages are well-defined — `None` for a degenerate or
    /// poisoned baseline (e.g. a series whose every cell failed).
    pub fn avg_improvement(&self, idx: usize, base: usize) -> Option<f64> {
        crate::metrics::improvement(self.series[idx].average, self.series[base].average)
    }
}

/// A histogram figure: per-mix DoD distributions (Figures 1/3/7).
#[derive(Clone, Debug)]
pub struct HistogramData {
    /// Figure title.
    pub title: String,
    /// `(mix name, histogram)` per mix; failed mixes are omitted and
    /// listed in [`HistogramData::failures`].
    pub mixes: Vec<(String, DodHistogram)>,
    /// One line per failed mix; empty on a fully healthy sweep.
    pub failures: Vec<String>,
    /// Sweep-health footer (see [`FigureData::health`]).
    pub health: Option<String>,
}

impl HistogramData {
    /// Mean dependent count pooled over all mixes.
    pub fn pooled_mean(&self) -> f64 {
        let mut pooled = DodHistogram::default();
        for (_, h) in &self.mixes {
            pooled.merge(h);
        }
        pooled.mean()
    }
}

fn ft_figure(lab: &mut Lab, title: &str, configs: &[RobConfig], mixes: &[usize]) -> FigureData {
    let variants: Vec<(String, RobConfig)> = configs.iter().map(|c| (c.label(), *c)).collect();
    ft_sweep(lab, title, variants, mixes)
}

/// Shared FT-figure driver: one series per labeled configuration, all
/// `mix × config` cells dispatched through [`Lab::sweep`] as one batch
/// (one phase-1 normalization pass, one phase-2 fan-out) and sliced
/// back per series in input order.
pub fn ft_sweep(
    lab: &mut Lab,
    title: &str,
    variants: Vec<(String, RobConfig)>,
    mixes: &[usize],
) -> FigureData {
    let cells: Vec<SweepCell> = variants
        .iter()
        .flat_map(|(_, cfg)| {
            let cfg = *cfg;
            mixes.iter().map(move |&m| (m, cfg))
        })
        .collect();
    let report = lab.sweep_cells(&cells);
    let health = sweep_health_note(lab, &report);
    let mut results = report.results().into_iter();
    let mut failures = Vec::new();
    let series = variants
        .into_iter()
        .map(|(label, _)| {
            let rows: Vec<(String, Result<MixRun, SimError>)> = mixes
                .iter()
                .map(|&m| (mix_name(m), results.next().expect("one result per cell")))
                .collect();
            Series::from_results(label, rows, &mut failures)
        })
        .collect();
    FigureData {
        title: title.to_string(),
        series,
        failures,
        health,
    }
}

/// The health footer attached to figure data: only present when the
/// lab has a resilience feature armed, so figures from a plain lab
/// stay byte-identical to the committed goldens. The summary itself is
/// path-independent (see [`crate::SweepHealth`]) — a resumed sweep
/// renders the same footer as an uninterrupted one.
fn sweep_health_note(lab: &Lab, report: &crate::SweepReport) -> Option<String> {
    lab.resilience_active()
        .then(|| report.health.summary_line())
}

/// Shared DoD-histogram driver: one column per mix under a single
/// configuration. The public entry point the spec executor renders
/// `kind = "histogram"` specs through; [`fig1`]/[`fig3`]/[`fig7`] are
/// fixed-wiring wrappers.
pub fn dod_figure(lab: &mut Lab, title: &str, cfg: RobConfig, mixes: &[usize]) -> HistogramData {
    let cells: Vec<SweepCell> = mixes.iter().map(|&m| (m, cfg)).collect();
    let report = lab.sweep_cells(&cells);
    let health = sweep_health_note(lab, &report);
    let mut failures = Vec::new();
    let mut cols = Vec::with_capacity(mixes.len());
    for (&m, res) in mixes.iter().zip(report.results()) {
        match res {
            Ok(run) => cols.push((run.mix.clone(), run.stats.dod_at_fill.clone())),
            Err(e) => failures.push(failure_line(&mix_name(m), &cfg.label(), &e)),
        }
    }
    HistogramData {
        title: title.to_string(),
        mixes: cols,
        failures,
        health,
    }
}

/// Figure 1: number of instructions dependent on a long-latency load,
/// observed in the ROB at miss service time, on the baseline machine.
pub fn fig1(lab: &mut Lab, mixes: &[usize]) -> HistogramData {
    dod_figure(
        lab,
        "Figure 1: DoD at L2-miss service time (Baseline_32)",
        RobConfig::Baseline(32),
        mixes,
    )
}

/// Figure 2: FT of 2-Level R-ROB16 vs Baseline_32 and Baseline_128.
pub fn fig2(lab: &mut Lab, mixes: &[usize]) -> FigureData {
    ft_figure(
        lab,
        "Figure 2: FT with 2-Level R-ROB",
        &[
            RobConfig::Baseline(32),
            RobConfig::Baseline(128),
            RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
        ],
        mixes,
    )
}

/// Figure 3: DoD distribution under 2-Level R-ROB16 (the paper reports
/// a 56 % increase in captured dependents over Figure 1).
pub fn fig3(lab: &mut Lab, mixes: &[usize]) -> HistogramData {
    dod_figure(
        lab,
        "Figure 3: DoD at L2-miss service time (2-Level R-ROB16)",
        RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
        mixes,
    )
}

/// Figure 4: FT of 2-Level Relaxed R-ROB15.
pub fn fig4(lab: &mut Lab, mixes: &[usize]) -> FigureData {
    ft_figure(
        lab,
        "Figure 4: FT with 2-Level Relaxed R-ROB15",
        &[
            RobConfig::Baseline(32),
            RobConfig::Baseline(128),
            RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)),
        ],
        mixes,
    )
}

/// Figure 5: FT of 2-Level CDR-ROB15 (32-cycle count delay).
pub fn fig5(lab: &mut Lab, mixes: &[usize]) -> FigureData {
    ft_figure(
        lab,
        "Figure 5: FT with 2-Level CDR-ROB15",
        &[
            RobConfig::Baseline(32),
            RobConfig::Baseline(128),
            RobConfig::TwoLevel(TwoLevelConfig::cdr_rob(15)),
        ],
        mixes,
    )
}

/// Figure 6: FT of 2-Level P-ROB3 and P-ROB5.
pub fn fig6(lab: &mut Lab, mixes: &[usize]) -> FigureData {
    ft_figure(
        lab,
        "Figure 6: FT with 2-Level P-ROB",
        &[
            RobConfig::Baseline(32),
            RobConfig::Baseline(128),
            RobConfig::TwoLevel(TwoLevelConfig::p_rob(3)),
            RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)),
        ],
        mixes,
    )
}

/// Figure 7: DoD distribution under 2-Level P-ROB (the paper reports a
/// 120 % increase in captured dependents over Figure 1).
pub fn fig7(lab: &mut Lab, mixes: &[usize]) -> HistogramData {
    dod_figure(
        lab,
        "Figure 7: DoD at L2-miss service time (2-Level P-ROB5)",
        RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)),
        mixes,
    )
}

/// One row of the DoD-accuracy table: how well the dynamic machinery
/// (the §4.1 hardware counter and, for P-ROB, the §4.2 predictor)
/// tracked the static-analysis ground truth in one mix × configuration
/// run.
#[derive(Clone, Debug)]
pub struct AccuracyRow {
    /// "Mix 1" .. "Mix 11".
    pub mix: String,
    /// Configuration label.
    pub config: String,
    /// Oracle cross-check counters for the run (checked fills,
    /// bound violations, exact/counter-error means).
    pub oracle: DodOracleStats,
    /// Verified prediction accuracy, for predictive configurations.
    pub pred_accuracy: Option<f64>,
    /// Predictor table coverage, for predictive configurations.
    pub pred_coverage: Option<f64>,
}

/// The DoD-accuracy table: per mix × configuration oracle and
/// predictor quality metrics.
#[derive(Clone, Debug)]
pub struct AccuracyData {
    /// Table title.
    pub title: String,
    /// One row per healthy mix × configuration cell.
    pub rows: Vec<AccuracyRow>,
    /// One line per failed cell; empty on a fully healthy sweep.
    pub failures: Vec<String>,
    /// Sweep-health footer (see [`FigureData::health`]).
    pub health: Option<String>,
}

impl AccuracyData {
    /// Total bound violations across all rows (must be zero on a
    /// healthy simulator).
    pub fn total_violations(&self) -> u64 {
        self.rows.iter().map(|r| r.oracle.violations).sum()
    }
}

/// DoD-accuracy table over `mixes`: the dynamic DoD counter and the
/// P-ROB predictor cross-checked against the static dependence bounds,
/// under the paper's reactive (R-ROB16) and predictive (P-ROB5)
/// configurations.
pub fn accuracy(lab: &mut Lab, mixes: &[usize]) -> AccuracyData {
    accuracy_for(
        lab,
        "DoD accuracy: dynamic counter & predictor vs. static bounds",
        &[
            RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
            RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)),
        ],
        mixes,
    )
}

/// Generic DoD-accuracy driver over an arbitrary configuration list —
/// the entry point `kind = "accuracy"` specs render through.
pub fn accuracy_for(
    lab: &mut Lab,
    title: &str,
    configs: &[RobConfig],
    mixes: &[usize],
) -> AccuracyData {
    let cells: Vec<SweepCell> = configs
        .iter()
        .flat_map(|&cfg| mixes.iter().map(move |&m| (m, cfg)))
        .collect();
    let report = lab.sweep_cells(&cells);
    let health = sweep_health_note(lab, &report);
    let mut results = report.results().into_iter();
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for cfg in configs {
        for &m in mixes {
            match results.next().expect("one result per cell") {
                Ok(run) => {
                    let predictive = run
                        .twolevel
                        .filter(|tl| tl.pred_hits + tl.pred_cold > 0 || tl.cov_lookups > 0);
                    rows.push(AccuracyRow {
                        mix: run.mix,
                        config: run.config,
                        oracle: run.stats.dod_oracle,
                        pred_accuracy: predictive.map(|tl| tl.prediction_accuracy()),
                        pred_coverage: predictive.map(|tl| tl.coverage()),
                    });
                }
                Err(e) => failures.push(failure_line(&mix_name(m), &cfg.label(), &e)),
            }
        }
    }
    AccuracyData {
        title: title.to_string(),
        rows,
        failures,
        health,
    }
}

/// §5.2 text: DoD-threshold sweep for the reactive scheme
/// ("thresholds ranging from 1 to 16"; higher values clog the IQ).
pub fn threshold_sweep(lab: &mut Lab, mixes: &[usize], thresholds: &[u32]) -> FigureData {
    let mut configs = vec![RobConfig::Baseline(32)];
    configs.extend(
        thresholds
            .iter()
            .map(|&t| RobConfig::TwoLevel(TwoLevelConfig::r_rob(t))),
    );
    ft_figure(lab, "DoD threshold sweep (2-Level R-ROB)", &configs, mixes)
}

/// Ablation A1 (DESIGN.md §6): design-choice sensitivity of the
/// reactive scheme — recheck cadence, CDR snapshot delay, release
/// policy, and second-level size.
pub fn ablation(lab: &mut Lab, mixes: &[usize]) -> FigureData {
    use crate::twolevel::ReleasePolicy;
    let mut variants: Vec<(String, TwoLevelConfig)> = Vec::new();
    let base = TwoLevelConfig::r_rob(16);
    variants.push(("R-ROB16 (paper)".into(), base));
    for interval in [1, 5, 20] {
        let mut c = base;
        c.recheck_interval = interval;
        variants.push((format!("recheck={interval}"), c));
    }
    for delay in [8, 16, 64] {
        let mut c = TwoLevelConfig::cdr_rob(15);
        c.scheme = Scheme::CountDelayed { delay };
        variants.push((format!("CDR delay={delay}"), c));
    }
    {
        let mut c = base;
        c.release = ReleasePolicy::DrainOnly;
        variants.push(("release=drain-only".into(), c));
    }
    for l2 in [96, 192, 768] {
        let mut c = base;
        c.l2_entries = l2;
        variants.push((format!("L2={l2}"), c));
    }
    let variants: Vec<(String, RobConfig)> = variants
        .into_iter()
        .map(|(label, cfg)| (label, RobConfig::TwoLevel(cfg)))
        .collect();
    ft_sweep(lab, "Ablation: two-level design choices", variants, mixes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_pipeline::FaultPlan;

    fn lab() -> Lab {
        Lab::new(11).with_budgets(6_000, 6_000)
    }

    #[test]
    fn fig1_histograms_have_samples() {
        let mut lab = lab();
        let h = fig1(&mut lab, &[1]);
        assert_eq!(h.mixes.len(), 1);
        assert!(h.mixes[0].1.samples > 0);
        assert!(h.pooled_mean() >= 0.0);
    }

    #[test]
    fn fig2_has_three_series_over_requested_mixes() {
        let mut lab = lab();
        let f = fig2(&mut lab, &[1, 9]);
        assert_eq!(f.series.len(), 3);
        assert_eq!(f.series[0].label, "Baseline_32");
        assert_eq!(f.series[2].label, "2-Level R-ROB16");
        for s in &f.series {
            assert_eq!(s.points.len(), 2);
            assert!(s.points.iter().all(|(_, v)| v.is_some()));
            assert!(s.average > 0.0);
        }
        assert!(f.failures.is_empty());
    }

    #[test]
    fn poisoned_cell_is_isolated_as_na() {
        let mut lab = lab();
        lab.machine.deadlock_cycles = 3_000;
        let mut plan = FaultPlan::new(2);
        plan.drop_fill = 1; // every fill for mix 1 is lost
        lab.set_fault(Some(1), plan);
        let f = fig2(&mut lab, &[1, 9]);
        assert_eq!(f.failures.len(), 3, "one failure per configuration");
        for s in &f.series {
            assert!(s.points[0].1.is_none(), "poisoned cell must be n/a");
            assert!(s.points[1].1.is_some(), "healthy cell must survive");
            // The average is over surviving cells only.
            assert!(s.average > 0.0 && s.average.is_finite());
        }
        for line in &f.failures {
            assert!(line.contains("deadlock"), "failure line: {line}");
            assert_eq!(line.lines().count(), 1, "failure lines are compact");
        }
    }

    #[test]
    fn poisoned_histogram_mix_is_skipped_with_note() {
        let mut lab = lab();
        lab.machine.deadlock_cycles = 3_000;
        let mut plan = FaultPlan::new(3);
        plan.drop_fill = 1;
        lab.set_fault(Some(1), plan);
        let h = fig1(&mut lab, &[1, 9]);
        assert_eq!(h.mixes.len(), 1, "failed mix omitted");
        assert_eq!(h.failures.len(), 1);
        assert!(h.failures[0].contains("deadlock"));
    }

    #[test]
    fn fig6_includes_both_p_rob_thresholds() {
        let mut lab = lab();
        let f = fig6(&mut lab, &[2]);
        let labels: Vec<&str> = f.series.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"2-Level P-ROB3"));
        assert!(labels.contains(&"2-Level P-ROB5"));
    }

    #[test]
    fn threshold_sweep_labels() {
        let mut lab = lab();
        let f = threshold_sweep(&mut lab, &[1], &[4, 16]);
        assert_eq!(f.series.len(), 3);
        assert_eq!(f.series[1].label, "2-Level R-ROB4");
    }

    #[test]
    fn accuracy_table_checks_fills_without_violations() {
        let mut lab = lab();
        let a = accuracy(&mut lab, &[1]);
        assert_eq!(a.rows.len(), 2, "R-ROB16 and P-ROB5 rows");
        assert!(a.failures.is_empty());
        assert_eq!(a.total_violations(), 0, "static bound must hold");
        for r in &a.rows {
            assert!(
                r.oracle.checked > 0,
                "{}: the oracle must see fills",
                r.config
            );
            // Exact dependents can never exceed the §4.1 counter, so
            // the mean error is exactly the counter's MLP overcount.
            assert!(r.oracle.mean_exact() >= 0.0);
        }
        let p_rob = a.rows.iter().find(|r| r.config.contains("P-ROB")).unwrap();
        assert!(p_rob.pred_accuracy.is_some(), "P-ROB exposes accuracy");
        assert!(p_rob.pred_coverage.is_some(), "P-ROB exposes coverage");
        let r_rob = a.rows.iter().find(|r| r.config.contains("R-ROB")).unwrap();
        assert!(r_rob.pred_accuracy.is_none(), "R-ROB has no predictor");
    }

    #[test]
    fn avg_improvement_math() {
        let f = FigureData {
            title: "t".into(),
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![],
                    average: 1.0,
                },
                Series {
                    label: "b".into(),
                    points: vec![],
                    average: 1.3,
                },
            ],
            failures: vec![],
            health: None,
        };
        let d = f.avg_improvement(1, 0).expect("healthy averages");
        assert!((d - 0.3).abs() < 1e-12);
        // A poisoned baseline makes the comparison undefined, not +0 %.
        assert_eq!(f.avg_improvement(0, 1).map(|_| ()), Some(()));
        let mut poisoned = f.clone();
        poisoned.series[0].average = f64::NAN;
        assert_eq!(poisoned.avg_improvement(1, 0), None);
    }

    #[test]
    fn figures_are_identical_at_any_job_count() {
        let render = |jobs: usize| {
            let mut lab = lab();
            lab.jobs = Some(jobs);
            let fig = fig2(&mut lab, &[1, 9]);
            let hist = fig1(&mut lab, &[1, 9]);
            (
                crate::report::render_figure(&fig),
                crate::report::render_histogram(&hist),
            )
        };
        let serial = render(1);
        let parallel = render(4);
        assert_eq!(serial.0, parallel.0, "FT figure differs across job counts");
        assert_eq!(serial.1, parallel.1, "histogram differs across job counts");
    }

    #[test]
    fn health_footer_appears_only_under_resilience() {
        // Plain lab: no footer — committed goldens stay byte-identical.
        let mut plain = lab();
        let f = fig2(&mut plain, &[1]);
        assert!(f.health.is_none());
        assert!(!crate::report::render_figure(&f).contains("sweep health"));
        // Resilient lab with idle knobs: footer present, all healthy.
        let mut resilient = lab().with_retries(1);
        let f = fig2(&mut resilient, &[1]);
        assert_eq!(
            f.health.as_deref(),
            Some("sweep health: 3 ok (0 retried), 0 timed out, 0 failed")
        );
        let rendered = crate::report::render_figure(&f);
        assert!(rendered.ends_with("sweep health: 3 ok (0 retried), 0 timed out, 0 failed\n"));
        // A watchdog-tight lab renders every cell n/a with a timeout
        // note plus the footer.
        let mut tight = lab().with_cell_cycle_budget(Some(400));
        let h = fig1(&mut tight, &[1]);
        assert!(h.mixes.is_empty());
        assert_eq!(h.failures.len(), 1);
        assert!(
            h.failures[0].contains("timed out at cycle 400"),
            "{:?}",
            h.failures
        );
        let rendered = crate::report::render_histogram(&h);
        assert!(rendered.contains("failed: "));
        assert!(rendered.contains("sweep health: 0 ok (0 retried), 1 timed out, 0 failed"));
    }
}
