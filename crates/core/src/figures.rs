//! Regeneration of every figure and table in the paper's evaluation
//! (§5). Each function returns structured data; `report.rs` renders it
//! as text, and `smtsim-bench` wraps each in a binary and a Criterion
//! bench.

use crate::experiment::{Lab, MixRun, RobConfig};
use crate::metrics::mean;
use crate::twolevel::{Scheme, TwoLevelConfig};
use smtsim_pipeline::DodHistogram;

/// All 11 paper mixes.
pub const ALL_MIXES: [usize; 11] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];

/// One line series across mixes (e.g. FT of one configuration).
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(mix name, value)` per mix.
    pub points: Vec<(String, f64)>,
    /// Arithmetic mean across mixes (the paper's "Average" bar).
    pub average: f64,
}

impl Series {
    fn from_runs(label: impl Into<String>, runs: &[MixRun]) -> Self {
        let points: Vec<(String, f64)> = runs.iter().map(|r| (r.mix.clone(), r.ft)).collect();
        let average = mean(&runs.iter().map(|r| r.ft).collect::<Vec<_>>());
        Series {
            label: label.into(),
            points,
            average,
        }
    }
}

/// A bar-chart style figure: several series over the same mixes.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Figure title.
    pub title: String,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Average improvement of `series[idx]` over `series[base]`.
    pub fn avg_improvement(&self, idx: usize, base: usize) -> f64 {
        crate::metrics::improvement(self.series[idx].average, self.series[base].average)
    }
}

/// A histogram figure: per-mix DoD distributions (Figures 1/3/7).
#[derive(Clone, Debug)]
pub struct HistogramData {
    /// Figure title.
    pub title: String,
    /// `(mix name, histogram)` per mix.
    pub mixes: Vec<(String, DodHistogram)>,
}

impl HistogramData {
    /// Mean dependent count pooled over all mixes.
    pub fn pooled_mean(&self) -> f64 {
        let mut pooled = DodHistogram::default();
        for (_, h) in &self.mixes {
            pooled.merge(h);
        }
        pooled.mean()
    }
}

fn ft_figure(lab: &mut Lab, title: &str, configs: &[RobConfig], mixes: &[usize]) -> FigureData {
    let series = configs
        .iter()
        .map(|cfg| {
            let runs: Vec<MixRun> = mixes.iter().map(|&m| lab.run_mix(m, *cfg)).collect();
            Series::from_runs(cfg.label(), &runs)
        })
        .collect();
    FigureData {
        title: title.to_string(),
        series,
    }
}

fn dod_figure(lab: &mut Lab, title: &str, cfg: RobConfig, mixes: &[usize]) -> HistogramData {
    let mixes = mixes
        .iter()
        .map(|&m| {
            let run = lab.run_mix(m, cfg);
            (run.mix.clone(), run.stats.dod_at_fill.clone())
        })
        .collect();
    HistogramData {
        title: title.to_string(),
        mixes,
    }
}

/// Figure 1: number of instructions dependent on a long-latency load,
/// observed in the ROB at miss service time, on the baseline machine.
pub fn fig1(lab: &mut Lab, mixes: &[usize]) -> HistogramData {
    dod_figure(
        lab,
        "Figure 1: DoD at L2-miss service time (Baseline_32)",
        RobConfig::Baseline(32),
        mixes,
    )
}

/// Figure 2: FT of 2-Level R-ROB16 vs Baseline_32 and Baseline_128.
pub fn fig2(lab: &mut Lab, mixes: &[usize]) -> FigureData {
    ft_figure(
        lab,
        "Figure 2: FT with 2-Level R-ROB",
        &[
            RobConfig::Baseline(32),
            RobConfig::Baseline(128),
            RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
        ],
        mixes,
    )
}

/// Figure 3: DoD distribution under 2-Level R-ROB16 (the paper reports
/// a 56 % increase in captured dependents over Figure 1).
pub fn fig3(lab: &mut Lab, mixes: &[usize]) -> HistogramData {
    dod_figure(
        lab,
        "Figure 3: DoD at L2-miss service time (2-Level R-ROB16)",
        RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
        mixes,
    )
}

/// Figure 4: FT of 2-Level Relaxed R-ROB15.
pub fn fig4(lab: &mut Lab, mixes: &[usize]) -> FigureData {
    ft_figure(
        lab,
        "Figure 4: FT with 2-Level Relaxed R-ROB15",
        &[
            RobConfig::Baseline(32),
            RobConfig::Baseline(128),
            RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)),
        ],
        mixes,
    )
}

/// Figure 5: FT of 2-Level CDR-ROB15 (32-cycle count delay).
pub fn fig5(lab: &mut Lab, mixes: &[usize]) -> FigureData {
    ft_figure(
        lab,
        "Figure 5: FT with 2-Level CDR-ROB15",
        &[
            RobConfig::Baseline(32),
            RobConfig::Baseline(128),
            RobConfig::TwoLevel(TwoLevelConfig::cdr_rob(15)),
        ],
        mixes,
    )
}

/// Figure 6: FT of 2-Level P-ROB3 and P-ROB5.
pub fn fig6(lab: &mut Lab, mixes: &[usize]) -> FigureData {
    ft_figure(
        lab,
        "Figure 6: FT with 2-Level P-ROB",
        &[
            RobConfig::Baseline(32),
            RobConfig::Baseline(128),
            RobConfig::TwoLevel(TwoLevelConfig::p_rob(3)),
            RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)),
        ],
        mixes,
    )
}

/// Figure 7: DoD distribution under 2-Level P-ROB (the paper reports a
/// 120 % increase in captured dependents over Figure 1).
pub fn fig7(lab: &mut Lab, mixes: &[usize]) -> HistogramData {
    dod_figure(
        lab,
        "Figure 7: DoD at L2-miss service time (2-Level P-ROB5)",
        RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)),
        mixes,
    )
}

/// §5.2 text: DoD-threshold sweep for the reactive scheme
/// ("thresholds ranging from 1 to 16"; higher values clog the IQ).
pub fn threshold_sweep(lab: &mut Lab, mixes: &[usize], thresholds: &[u32]) -> FigureData {
    let mut configs = vec![RobConfig::Baseline(32)];
    configs.extend(
        thresholds
            .iter()
            .map(|&t| RobConfig::TwoLevel(TwoLevelConfig::r_rob(t))),
    );
    ft_figure(lab, "DoD threshold sweep (2-Level R-ROB)", &configs, mixes)
}

/// Ablation A1 (DESIGN.md §6): design-choice sensitivity of the
/// reactive scheme — recheck cadence, CDR snapshot delay, release
/// policy, and second-level size.
pub fn ablation(lab: &mut Lab, mixes: &[usize]) -> FigureData {
    use crate::twolevel::ReleasePolicy;
    let mut variants: Vec<(String, TwoLevelConfig)> = Vec::new();
    let base = TwoLevelConfig::r_rob(16);
    variants.push(("R-ROB16 (paper)".into(), base));
    for interval in [1, 5, 20] {
        let mut c = base;
        c.recheck_interval = interval;
        variants.push((format!("recheck={interval}"), c));
    }
    for delay in [8, 16, 64] {
        let mut c = TwoLevelConfig::cdr_rob(15);
        c.scheme = Scheme::CountDelayed { delay };
        variants.push((format!("CDR delay={delay}"), c));
    }
    {
        let mut c = base;
        c.release = ReleasePolicy::DrainOnly;
        variants.push(("release=drain-only".into(), c));
    }
    for l2 in [96, 192, 768] {
        let mut c = base;
        c.l2_entries = l2;
        variants.push((format!("L2={l2}"), c));
    }
    let series = variants
        .into_iter()
        .map(|(label, cfg)| {
            let runs: Vec<MixRun> = mixes
                .iter()
                .map(|&m| lab.run_mix(m, RobConfig::TwoLevel(cfg)))
                .collect();
            Series::from_runs(label, &runs)
        })
        .collect();
    FigureData {
        title: "Ablation: two-level design choices".to_string(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab() -> Lab {
        Lab::new(11).with_budgets(6_000, 6_000)
    }

    #[test]
    fn fig1_histograms_have_samples() {
        let mut lab = lab();
        let h = fig1(&mut lab, &[1]);
        assert_eq!(h.mixes.len(), 1);
        assert!(h.mixes[0].1.samples > 0);
        assert!(h.pooled_mean() >= 0.0);
    }

    #[test]
    fn fig2_has_three_series_over_requested_mixes() {
        let mut lab = lab();
        let f = fig2(&mut lab, &[1, 9]);
        assert_eq!(f.series.len(), 3);
        assert_eq!(f.series[0].label, "Baseline_32");
        assert_eq!(f.series[2].label, "2-Level R-ROB16");
        for s in &f.series {
            assert_eq!(s.points.len(), 2);
            assert!(s.average > 0.0);
        }
    }

    #[test]
    fn fig6_includes_both_p_rob_thresholds() {
        let mut lab = lab();
        let f = fig6(&mut lab, &[2]);
        let labels: Vec<&str> = f.series.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"2-Level P-ROB3"));
        assert!(labels.contains(&"2-Level P-ROB5"));
    }

    #[test]
    fn threshold_sweep_labels() {
        let mut lab = lab();
        let f = threshold_sweep(&mut lab, &[1], &[4, 16]);
        assert_eq!(f.series.len(), 3);
        assert_eq!(f.series[1].label, "2-Level R-ROB4");
    }

    #[test]
    fn avg_improvement_math() {
        let f = FigureData {
            title: "t".into(),
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![],
                    average: 1.0,
                },
                Series {
                    label: "b".into(),
                    points: vec![],
                    average: 1.3,
                },
            ],
        };
        assert!((f.avg_improvement(1, 0) - 0.3).abs() < 1e-12);
    }
}
