//! Resumable on-disk sweep journal.
//!
//! An append-only JSON-lines file recording one line per *completed*
//! sweep cell, so a killed sweep relaunched with the same journal path
//! skips every already-finished cell and still produces byte-identical
//! figure output to an uninterrupted run (`SMTSIM_JOURNAL`, see
//! EXPERIMENTS.md; format details in DESIGN.md §13).
//!
//! Layout:
//!
//! ```text
//! {"smtsim_journal":1,"universe":"<fnv64 hex of the lab state>"}
//! {"key":"<mix>|<config fingerprint>","attempts":N,"run":{...},"crc":"<fnv64 hex>"}
//! ...
//! ```
//!
//! * The **header** pins the journal to one experiment universe — the
//!   hash covers every [`Lab`](crate::Lab) field that can change a cell
//!   result (seed, budgets, warm-up, machine, normalization reference,
//!   fault plans). Opening a journal written under a different universe
//!   is a typed [`JournalError::UniverseMismatch`], never a silent
//!   reuse — the same bug class as the stale normalization cache fixed
//!   in an earlier revision.
//! * Each **record** is self-checking: `crc` is the FNV-1a hash of
//!   `key|attempts|<canonical run JSON>`, and the reader re-serializes
//!   the parsed run through the same canonical writer, so a record only
//!   loads if its payload round-trips bit-exactly.
//! * **Atomicity** comes from single-`write` appends: every record is
//!   one `write_all` of one complete line (serialized under a mutex),
//!   so a crash can only truncate the *final* line. The reader
//!   tolerates exactly that — a trailing partial line is dropped — while
//!   corruption anywhere else (garbage bytes, a torn middle record, a
//!   failed crc) is a typed [`JournalError::Corrupt`].
//!
//! Only `Ok` cells are journaled. Failed cells re-run on resume: they
//! are cheap (they failed early) and re-running them keeps the
//! resumed sweep's result vector — and therefore the rendered figure —
//! identical to an uninterrupted run's.

use crate::experiment::MixRun;
use crate::twolevel::TwoLevelStats;
use smtsim_pipeline::{DodHistogram, DodOracleStats, FaultStats, SimStats, ThreadStats};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal format version (header field `smtsim_journal`).
pub const JOURNAL_VERSION: u64 = 1;

/// Why a journal could not be opened or a record could not be loaded.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalError {
    /// The file could not be read, created or appended to.
    Io {
        /// Journal path.
        path: PathBuf,
        /// The OS error.
        detail: String,
    },
    /// A non-final line failed to parse or failed its crc — the file
    /// was damaged somewhere a single-line append crash cannot reach.
    Corrupt {
        /// 1-based line number of the offending record.
        line: usize,
        /// What failed.
        detail: String,
    },
    /// The header's universe fingerprint does not match the current
    /// lab state: the journal was recorded under different seeds,
    /// budgets, machine or fault plans and must not be reused.
    UniverseMismatch {
        /// Fingerprint of the current lab state.
        expected: String,
        /// Fingerprint found in the journal header.
        found: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, detail } => {
                write!(f, "journal I/O error on {}: {detail}", path.display())
            }
            JournalError::Corrupt { line, detail } => {
                write!(f, "journal corrupt at line {line}: {detail}")
            }
            JournalError::UniverseMismatch { expected, found } => write!(
                f,
                "journal universe mismatch: lab state hashes to {expected} \
                 but the journal was recorded under {found}; refusing to \
                 resume from a different experiment universe"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// FNV-1a 64-bit — the workspace's dependency-free content hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hex fingerprint of an arbitrary canonical description string.
pub fn fingerprint_str(s: &str) -> String {
    format!("{:016x}", fnv1a64(s.as_bytes()))
}

/// The journal key of one sweep cell: mix index plus the config's
/// *value* fingerprint (not its display label, which can collide).
pub fn cell_key(mix_idx: usize, config_fingerprint: &str) -> String {
    format!("{mix_idx}|{config_fingerprint}")
}

/// One loaded journal record.
#[derive(Clone, Debug)]
pub struct JournalEntry {
    /// The completed cell result.
    pub run: MixRun,
    /// Attempts the cell took when first completed (1 = first try).
    pub attempts: u32,
}

/// An open sweep journal: a snapshot of previously completed cells
/// plus an append handle for newly completed ones. Shared by sweep
/// workers through `&Journal` — appends serialize on an internal lock.
pub struct Journal {
    path: PathBuf,
    universe: String,
    /// Records loaded at open time plus those appended through this
    /// handle — the live view `lookup` serves, so a second sweep over
    /// the same open journal sees the first sweep's cells.
    entries: Mutex<BTreeMap<String, JournalEntry>>,
    file: Mutex<fs::File>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("entries", &self.len())
            .finish()
    }
}

impl Journal {
    /// Opens (or creates) the journal at `path` for the experiment
    /// universe `universe` (a [`fingerprint_str`] of the lab state).
    /// Existing records are validated and loaded; a trailing partial
    /// line — the signature of a crash mid-append — is silently
    /// dropped, every other malformation is a typed error.
    pub fn open(path: &Path, universe: &str) -> Result<Journal, JournalError> {
        let io = |e: std::io::Error| JournalError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        };
        let mut entries = BTreeMap::new();
        let preexisting = path.exists();
        if preexisting {
            let text = fs::read_to_string(path).map_err(io)?;
            entries = load_records(&text, universe)?;
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io)?;
        if !preexisting {
            let header =
                format!("{{\"smtsim_journal\":{JOURNAL_VERSION},\"universe\":\"{universe}\"}}\n");
            file.write_all(header.as_bytes()).map_err(io)?;
            file.flush().map_err(io)?;
        }
        Ok(Journal {
            path: path.to_path_buf(),
            universe: universe.to_string(),
            entries: Mutex::new(entries),
            file: Mutex::new(file),
        })
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The universe fingerprint this journal was opened under.
    pub fn universe(&self) -> &str {
        &self.universe
    }

    /// The record for `key` — loaded at open time or appended through
    /// this handle — if any.
    pub fn lookup(&self, key: &str) -> Option<JournalEntry> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one completed cell as a single atomic line write, then
    /// folds it into the live in-memory view.
    pub fn record(&self, key: &str, run: &MixRun, attempts: u32) -> Result<(), JournalError> {
        let line = record_line(key, run, attempts);
        {
            let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
            let io = |e: std::io::Error| JournalError::Io {
                path: self.path.clone(),
                detail: e.to_string(),
            };
            file.write_all(line.as_bytes()).map_err(io)?;
            file.flush().map_err(io)?;
        }
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                key.to_owned(),
                JournalEntry {
                    run: run.clone(),
                    attempts,
                },
            );
        Ok(())
    }
}

/// Serializes one record line (with trailing newline).
fn record_line(key: &str, run: &MixRun, attempts: u32) -> String {
    let run_json = mix_run_to_json(run);
    let crc = fingerprint_str(&format!("{key}|{attempts}|{run_json}"));
    format!(
        "{{\"key\":{},\"attempts\":{attempts},\"run\":{run_json},\"crc\":\"{crc}\"}}\n",
        json_string(key)
    )
}

/// Parses journal text: header validation plus record loading with the
/// truncation-tolerance policy described in the module docs.
fn load_records(
    text: &str,
    universe: &str,
) -> Result<BTreeMap<String, JournalEntry>, JournalError> {
    let mut entries = BTreeMap::new();
    // A crash mid-append leaves a final line without its newline; that
    // partial tail (and only it) is dropped before validation.
    let (complete, _partial_tail) = match text.rfind('\n') {
        Some(i) => (&text[..i], &text[i + 1..]),
        None => ("", text),
    };
    let mut lines = complete.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(JournalError::Corrupt {
            line: 1,
            detail: "journal has no complete header line".into(),
        });
    };
    let hdr = parse_json(header).map_err(|e| JournalError::Corrupt {
        line: 1,
        detail: format!("unparseable header: {e}"),
    })?;
    let version = hdr
        .get("smtsim_journal")
        .and_then(Json::as_u64)
        .ok_or_else(|| JournalError::Corrupt {
            line: 1,
            detail: "header lacks smtsim_journal version".into(),
        })?;
    if version != JOURNAL_VERSION {
        return Err(JournalError::Corrupt {
            line: 1,
            detail: format!("unsupported journal version {version}"),
        });
    }
    let found =
        hdr.get("universe")
            .and_then(Json::as_str)
            .ok_or_else(|| JournalError::Corrupt {
                line: 1,
                detail: "header lacks universe fingerprint".into(),
            })?;
    if found != universe {
        return Err(JournalError::UniverseMismatch {
            expected: universe.to_string(),
            found: found.to_string(),
        });
    }
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let corrupt = |detail: String| JournalError::Corrupt {
            line: lineno,
            detail,
        };
        let rec = parse_json(line).map_err(|e| corrupt(format!("unparseable record: {e}")))?;
        let key = rec
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| corrupt("record lacks key".into()))?
            .to_string();
        let attempts = rec
            .get("attempts")
            .and_then(Json::as_u64)
            .ok_or_else(|| corrupt("record lacks attempts".into()))? as u32;
        let run_val = rec
            .get("run")
            .ok_or_else(|| corrupt("record lacks run".into()))?;
        let run = mix_run_from_json(run_val).map_err(|e| corrupt(format!("bad run: {e}")))?;
        let crc = rec
            .get("crc")
            .and_then(Json::as_str)
            .ok_or_else(|| corrupt("record lacks crc".into()))?;
        // Re-serialize through the canonical writer: the crc only
        // matches if the payload round-trips bit-exactly.
        let expect = fingerprint_str(&format!("{key}|{attempts}|{}", mix_run_to_json(&run)));
        if crc != expect {
            return Err(corrupt(format!(
                "crc mismatch for key {key}: stored {crc}, recomputed {expect}"
            )));
        }
        entries.insert(key, JournalEntry { run, attempts });
    }
    Ok(entries)
}

// ---------------------------------------------------------------------
// Canonical MixRun JSON (hand-rolled: the workspace is serde-free).
// ---------------------------------------------------------------------

/// Escapes and quotes a JSON string. Public because every hand-rolled
/// JSON writer in the workspace (the journal itself, the serve
/// protocol) must escape identically — the workspace is serde-free.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes an f64 so that parsing the text yields the identical bits:
/// `{:?}` emits the shortest representation that round-trips.
fn json_f64(v: f64) -> String {
    format!("{v:?}")
}

fn json_f64_arr(vs: &[f64]) -> String {
    let body: Vec<String> = vs.iter().map(|&v| json_f64(v)).collect();
    format!("[{}]", body.join(","))
}

fn json_u64_arr(vs: &[u64]) -> String {
    let body: Vec<String> = vs.iter().map(u64::to_string).collect();
    format!("[{}]", body.join(","))
}

/// Canonical JSON of one [`MixRun`] — fixed key order, exact floats.
pub fn mix_run_to_json(r: &MixRun) -> String {
    let mut s = String::with_capacity(1024);
    let _ = write!(
        s,
        "{{\"mix\":{},\"config\":{},\"ft\":{},\"throughput\":{},\"ipc\":{},\"single_ipc\":{},\"weighted\":{}",
        json_string(&r.mix),
        json_string(&r.config),
        json_f64(r.ft),
        json_f64(r.throughput),
        json_f64_arr(&r.ipc),
        json_f64_arr(&r.single_ipc),
        json_f64_arr(&r.weighted),
    );
    let st = &r.stats;
    let _ = write!(
        s,
        ",\"stats\":{{\"cycles\":{},\"iq_occupancy_sum\":{},\"iq_full_cycles\":{},\"threads\":[",
        st.cycles, st.iq_occupancy_sum, st.iq_full_cycles
    );
    for (i, t) in st.threads.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"committed\":{},\"fetched\":{},\"wrong_path_fetched\":{},\"dispatched\":{},\"issued\":{},\"squashed\":{},\"branches\":{},\"mispredicts\":{},\"loads\":{},\"l2_misses\":{},\"forwarded_loads\":{},\"rob_occupancy_sum\":{},\"rob_stall_cycles\":{},\"stall_regs\":{},\"stall_iq\":{},\"stall_caps\":{},\"stall_lsq\":{}}}",
            t.committed,
            t.fetched,
            t.wrong_path_fetched,
            t.dispatched,
            t.issued,
            t.squashed,
            t.branches,
            t.mispredicts,
            t.loads,
            t.l2_misses,
            t.forwarded_loads,
            t.rob_occupancy_sum,
            t.rob_stall_cycles,
            t.stall_regs,
            t.stall_iq,
            t.stall_caps,
            t.stall_lsq,
        );
    }
    let h = &st.dod_at_fill;
    let _ = write!(
        s,
        "],\"dod_at_fill\":{{\"bins\":{},\"samples\":{},\"sum\":{}}}",
        json_u64_arr(h.bins()),
        h.samples,
        h.sum
    );
    let o = &st.dod_oracle;
    let _ = write!(
        s,
        ",\"dod_oracle\":{{\"checked\":{},\"violations\":{},\"exact_sum\":{},\"counter_err_sum\":{},\"counter_overshoot\":{}}}}}",
        o.checked, o.violations, o.exact_sum, o.counter_err_sum, o.counter_overshoot
    );
    match &r.twolevel {
        None => s.push_str(",\"twolevel\":null"),
        Some(tl) => {
            let _ = write!(
                s,
                ",\"twolevel\":{{\"allocations\":{},\"releases\":{},\"held_cycles\":{},\"rejected_dod\":{},\"rejected_busy\":{},\"pred_hits\":{},\"pred_cold\":{},\"pred_correct\":{},\"pred_verified\":{},\"cov_lookups\":{},\"cov_hits\":{}}}",
                tl.allocations,
                tl.releases,
                tl.held_cycles,
                tl.rejected_dod,
                tl.rejected_busy,
                tl.pred_hits,
                tl.pred_cold,
                tl.pred_correct,
                tl.pred_verified,
                tl.cov_lookups,
                tl.cov_hits,
            );
        }
    }
    let fs = &r.faults;
    let _ = write!(
        s,
        ",\"faults\":{{\"dropped_fills\":{},\"delayed_fills\":{},\"corrupted_dod\":{},\"withheld_releases\":{}}}}}",
        fs.dropped_fills, fs.delayed_fills, fs.corrupted_dod, fs.withheld_releases
    );
    s
}

/// Rebuilds a [`MixRun`] from its canonical JSON value.
pub fn mix_run_from_json(v: &Json) -> Result<MixRun, String> {
    let str_field = |k: &str| -> Result<String, String> {
        v.get(k)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field {k}"))
    };
    let f64_field = |k: &str| -> Result<f64, String> {
        v.get(k)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing number field {k}"))
    };
    let f64_vec = |k: &str| -> Result<Vec<f64>, String> {
        v.get(k)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing array field {k}"))?
            .iter()
            .map(|x| x.as_f64().ok_or_else(|| format!("non-number in {k}")))
            .collect()
    };
    let stats_v = v.get("stats").ok_or("missing stats")?;
    let u = |obj: &Json, k: &str| -> Result<u64, String> {
        obj.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing u64 field {k}"))
    };
    let threads_v = stats_v
        .get("threads")
        .and_then(Json::as_arr)
        .ok_or("missing stats.threads")?;
    let mut threads = Vec::with_capacity(threads_v.len());
    for t in threads_v {
        threads.push(ThreadStats {
            committed: u(t, "committed")?,
            fetched: u(t, "fetched")?,
            wrong_path_fetched: u(t, "wrong_path_fetched")?,
            dispatched: u(t, "dispatched")?,
            issued: u(t, "issued")?,
            squashed: u(t, "squashed")?,
            branches: u(t, "branches")?,
            mispredicts: u(t, "mispredicts")?,
            loads: u(t, "loads")?,
            l2_misses: u(t, "l2_misses")?,
            forwarded_loads: u(t, "forwarded_loads")?,
            rob_occupancy_sum: u(t, "rob_occupancy_sum")?,
            rob_stall_cycles: u(t, "rob_stall_cycles")?,
            stall_regs: u(t, "stall_regs")?,
            stall_iq: u(t, "stall_iq")?,
            stall_caps: u(t, "stall_caps")?,
            stall_lsq: u(t, "stall_lsq")?,
        });
    }
    let h_v = stats_v
        .get("dod_at_fill")
        .ok_or("missing stats.dod_at_fill")?;
    let bins: Vec<u64> = h_v
        .get("bins")
        .and_then(Json::as_arr)
        .ok_or("missing dod_at_fill.bins")?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| "non-u64 bin".to_string()))
        .collect::<Result<_, _>>()?;
    let dod_at_fill = DodHistogram::from_parts(bins, u(h_v, "samples")?, u(h_v, "sum")?);
    let o_v = stats_v
        .get("dod_oracle")
        .ok_or("missing stats.dod_oracle")?;
    let dod_oracle = DodOracleStats {
        checked: u(o_v, "checked")?,
        violations: u(o_v, "violations")?,
        exact_sum: u(o_v, "exact_sum")?,
        counter_err_sum: u(o_v, "counter_err_sum")?,
        counter_overshoot: u(o_v, "counter_overshoot")?,
    };
    let stats = SimStats {
        cycles: u(stats_v, "cycles")?,
        threads,
        iq_occupancy_sum: u(stats_v, "iq_occupancy_sum")?,
        iq_full_cycles: u(stats_v, "iq_full_cycles")?,
        dod_at_fill,
        dod_oracle,
    };
    let twolevel = match v.get("twolevel") {
        None | Some(Json::Null) => None,
        Some(tl) => Some(TwoLevelStats {
            allocations: u(tl, "allocations")?,
            releases: u(tl, "releases")?,
            held_cycles: u(tl, "held_cycles")?,
            rejected_dod: u(tl, "rejected_dod")?,
            rejected_busy: u(tl, "rejected_busy")?,
            pred_hits: u(tl, "pred_hits")?,
            pred_cold: u(tl, "pred_cold")?,
            pred_correct: u(tl, "pred_correct")?,
            pred_verified: u(tl, "pred_verified")?,
            cov_lookups: u(tl, "cov_lookups")?,
            cov_hits: u(tl, "cov_hits")?,
        }),
    };
    let f_v = v.get("faults").ok_or("missing faults")?;
    let faults = FaultStats {
        dropped_fills: u(f_v, "dropped_fills")?,
        delayed_fills: u(f_v, "delayed_fills")?,
        corrupted_dod: u(f_v, "corrupted_dod")?,
        withheld_releases: u(f_v, "withheld_releases")?,
    };
    Ok(MixRun {
        mix: str_field("mix")?,
        config: str_field("config")?,
        ft: f64_field("ft")?,
        throughput: f64_field("throughput")?,
        ipc: f64_vec("ipc")?,
        single_ipc: f64_vec("single_ipc")?,
        weighted: f64_vec("weighted")?,
        stats,
        twolevel,
        faults,
    })
}

// ---------------------------------------------------------------------
// Minimal JSON value model + recursive-descent parser.
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their source text so u64 counters
/// above 2^53 survive the trip exactly (`as_u64` parses the text
/// directly; `as_f64` goes through the same shortest-representation
/// round trip the writer uses).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its source text.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order irrelevant to consumers).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as u64, if it parses exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document from `text` (must consume all non-space
/// input).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        // `{:?}` on non-finite floats emits NaN / inf / -inf; accept
        // them so any float the writer can produce parses back.
        Some(b'N') => parse_lit(b, pos, "NaN", Json::Num("NaN".into())),
        Some(b'i') => parse_lit(b, pos, "inf", Json::Num("inf".into())),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
        if b[*pos..].starts_with(b"inf") {
            *pos += 3;
            return Ok(Json::Num("-inf".into()));
        }
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected number at offset {start}"));
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if text.parse::<f64>().is_err() {
        return Err(format!("malformed number '{text}' at offset {start}"));
    }
    Ok(Json::Num(text.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty remainder")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run(twolevel: bool) -> MixRun {
        let mut stats = SimStats::new(2);
        stats.cycles = 123_456;
        stats.iq_occupancy_sum = 42;
        stats.iq_full_cycles = 7;
        stats.threads[0].committed = 1000;
        stats.threads[0].l2_misses = 55;
        stats.threads[1].stall_lsq = 3;
        stats.dod_at_fill.record(3);
        stats.dod_at_fill.record(64); // saturates: sum != Σ i·bins[i]
        stats.dod_oracle.checked = 9;
        stats.dod_oracle.counter_err_sum = 2;
        MixRun {
            mix: "Mix 1".into(),
            config: "Baseline_32".into(),
            ft: 0.1 + 0.2, // a value with no short decimal expansion
            throughput: 1.75,
            ipc: vec![0.5, f64::consts_test()],
            single_ipc: vec![1.0, 2.0],
            weighted: vec![0.5, 0.25],
            stats,
            twolevel: twolevel.then_some(TwoLevelStats {
                allocations: 11,
                releases: 10,
                held_cycles: 999,
                rejected_dod: 1,
                rejected_busy: 2,
                pred_hits: 3,
                pred_cold: 4,
                pred_correct: 5,
                pred_verified: 6,
                cov_lookups: 7,
                cov_hits: 8,
            }),
            faults: FaultStats {
                dropped_fills: 1,
                delayed_fills: 2,
                corrupted_dod: 3,
                withheld_releases: 4,
            },
        }
    }

    trait ConstsTest {
        fn consts_test() -> f64;
    }
    impl ConstsTest for f64 {
        fn consts_test() -> f64 {
            // An awkward float: many significant digits, round-trips
            // only through the shortest-representation path.
            0.123_456_789_012_345_67
        }
    }

    #[test]
    fn mix_run_round_trips_exactly() {
        for tl in [false, true] {
            let run = sample_run(tl);
            let json = mix_run_to_json(&run);
            let parsed = parse_json(&json).expect("canonical JSON parses");
            let back = mix_run_from_json(&parsed).expect("round trip");
            assert_eq!(format!("{run:?}"), format!("{back:?}"));
            // Idempotent: serializing the round-tripped value is
            // byte-identical (this is what record crcs rely on).
            assert_eq!(json, mix_run_to_json(&back));
        }
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a":[1,2.5,-3],"b":{"c":"x\"y\\z\nw"},"d":null,"e":true}"#)
            .expect("parses");
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-3.0)
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\"y\\z\nw")
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parser_preserves_large_u64() {
        let big = u64::MAX;
        let v = parse_json(&format!("{{\"x\":{big}}}")).expect("parses");
        assert_eq!(v.get("x").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("nope").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} extra").is_err());
    }

    #[test]
    fn journal_create_record_reopen() {
        let dir = std::env::temp_dir().join("smtsim-journal-test-basic");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let uni = fingerprint_str("universe-A");
        let run = sample_run(true);
        {
            let j = Journal::open(&path, &uni).expect("create");
            assert!(j.is_empty());
            j.record("1|Baseline(32)", &run, 2).expect("append");
        }
        let j = Journal::open(&path, &uni).expect("reopen");
        assert_eq!(j.len(), 1);
        let e = j.lookup("1|Baseline(32)").expect("recorded entry");
        assert_eq!(e.attempts, 2);
        assert_eq!(format!("{:?}", e.run), format!("{run:?}"));
        assert!(j.lookup("2|Baseline(32)").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_final_record_is_tolerated() {
        let dir = std::env::temp_dir().join("smtsim-journal-test-trunc");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let uni = fingerprint_str("universe-A");
        {
            let j = Journal::open(&path, &uni).expect("create");
            j.record("k1", &sample_run(false), 1).unwrap();
            j.record("k2", &sample_run(true), 1).unwrap();
        }
        // Simulate a crash mid-append: chop the file mid final line.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 25]).unwrap();
        let j = Journal::open(&path, &uni).expect("truncated tail tolerated");
        assert_eq!(j.len(), 1, "only the complete record survives");
        assert!(j.lookup("k1").is_some());
        assert!(j.lookup("k2").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_mid_file_is_typed_corruption() {
        let dir = std::env::temp_dir().join("smtsim-journal-test-garbage");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let uni = fingerprint_str("universe-A");
        {
            let j = Journal::open(&path, &uni).expect("create");
            j.record("k1", &sample_run(false), 1).unwrap();
        }
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("!!not json!!\n");
        // Append a valid record *after* the garbage so the garbage is
        // mid-file, not a truncated tail.
        text.push_str(&record_line("k2", &sample_run(true), 1));
        fs::write(&path, &text).unwrap();
        match Journal::open(&path, &uni) {
            Err(JournalError::Corrupt { line, detail }) => {
                assert_eq!(line, 3);
                assert!(detail.contains("unparseable record"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_mismatch_is_typed_corruption() {
        let dir = std::env::temp_dir().join("smtsim-journal-test-crc");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let uni = fingerprint_str("universe-A");
        {
            let j = Journal::open(&path, &uni).expect("create");
            j.record("k1", &sample_run(false), 1).unwrap();
            j.record("k2", &sample_run(false), 1).unwrap();
        }
        // Flip a digit inside the first record's payload (keep JSON
        // valid, break the crc).
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"cycles\":123456", "\"cycles\":123457", 1);
        assert_ne!(text, tampered, "tamper site must exist");
        fs::write(&path, tampered).unwrap();
        match Journal::open(&path, &uni) {
            Err(JournalError::Corrupt { detail, .. }) => {
                assert!(detail.contains("crc mismatch"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_universe_is_rejected() {
        let dir = std::env::temp_dir().join("smtsim-journal-test-universe");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let a = fingerprint_str("universe-A");
        let b = fingerprint_str("universe-B");
        {
            let j = Journal::open(&path, &a).expect("create");
            j.record("k1", &sample_run(false), 1).unwrap();
        }
        match Journal::open(&path, &b) {
            Err(JournalError::UniverseMismatch { expected, found }) => {
                assert_eq!(expected, b);
                assert_eq!(found, a);
            }
            other => panic!("expected UniverseMismatch, got {other:?}"),
        }
        // The original universe still opens fine.
        assert_eq!(Journal::open(&path, &a).expect("same universe").len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_file_lacks_header() {
        let dir = std::env::temp_dir().join("smtsim-journal-test-empty");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        fs::write(&path, "").unwrap();
        match Journal::open(&path, &fingerprint_str("u")) {
            Err(JournalError::Corrupt { line: 1, detail }) => {
                assert!(detail.contains("header"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
