//! The two-level reorder buffer (§4 of the paper).
//!
//! ROB storage is split into small private per-thread first-level ROBs
//! (32 entries each in the paper) and one large shared second-level
//! partition (384 entries) that is allocated *as a unit* to at most one
//! thread at a time — and only to a thread whose L2-missing load has a
//! small **Degree of Dependence** (DoD): few not-yet-executed
//! instructions behind it in the first-level ROB. Such a thread can
//! keep dispatching in the shadow of the miss without clogging the
//! shared issue queue, which is what lets memory-bound threads be
//! accelerated *without* hurting their co-runners.
//!
//! All four of the paper's allocation schemes are implemented:
//!
//! * **2-Level R-ROB** (§5.2) — reactive; allocate when the missing
//!   load is the oldest instruction, the first-level ROB is full, and
//!   the counted DoD is below the threshold; conditions are checked at
//!   miss detection and re-checked every 10 cycles.
//! * **2-Level Relaxed R-ROB** — drops the "first level full"
//!   condition, trading count accuracy for allocation latency.
//! * **2-Level CDR-ROB** — takes the DoD count snapshot a fixed delay
//!   (32 cycles) after miss detection, with the oldest/full conditions
//!   relaxed.
//! * **2-Level P-ROB** (§4.2/§5.3) — predictive; a PC-indexed DoD
//!   predictor is consulted the moment the miss is detected, and
//!   verified/trained by an actual count when the miss is serviced.

use smtsim_isa::ThreadId;
use smtsim_mem::Cycle;
use smtsim_obs::{DenyReason, DodSource, TraceEvent};
use smtsim_pipeline::{MissEvent, RobAllocator, RobQuery};
use smtsim_predict::{DodPredictor, LastValueDod, PathDod, ThresholdBitDod};

/// Which DoD predictor design backs a predictive scheme (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DodPredictorKind {
    /// Last-value, PC-indexed table (the scheme evaluated in §5.3).
    LastValue,
    /// Single below-threshold bit per entry.
    ThresholdBit,
    /// gshare-style path-qualified table.
    Path,
}

/// Allocation scheme selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Reactive counting at miss detection, with configurable
    /// structural preconditions.
    Reactive {
        /// Require the missing load to be the oldest in-flight
        /// instruction of its thread.
        require_oldest: bool,
        /// Require the first-level ROB to be full.
        require_full: bool,
    },
    /// Count-delayed reactive: snapshot the DoD a fixed number of
    /// cycles after miss detection (2-Level CDR-ROB).
    CountDelayed {
        /// Cycles between miss detection and the count snapshot.
        delay: Cycle,
    },
    /// Predictive allocation at miss-detection time (2-Level P-ROB).
    Predictive {
        /// Predictor design.
        predictor: DodPredictorKind,
    },
}

/// The scheme family without its tuning parameters — the granularity
/// at which the protocol model (`smtsim-check`) distinguishes
/// behaviors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SchemeKind {
    /// Reactive counting ([`Scheme::Reactive`]), full or relaxed.
    Reactive,
    /// Count-delayed reactive ([`Scheme::CountDelayed`]).
    CountDelayed,
    /// Predictive ([`Scheme::Predictive`]).
    Predictive,
}

impl Scheme {
    /// The scheme family this configuration belongs to.
    #[must_use]
    pub fn kind(self) -> SchemeKind {
        match self {
            Scheme::Reactive { .. } => SchemeKind::Reactive,
            Scheme::CountDelayed { .. } => SchemeKind::CountDelayed,
            Scheme::Predictive { .. } => SchemeKind::Predictive,
        }
    }

    /// Whether this scheme can ever emit `reason` — the deny-reason
    /// soundness table the protocol model checks traces against. The
    /// match is deliberately exhaustive over [`DenyReason`]: adding a
    /// reason fails compilation here until its reachability per scheme
    /// is stated.
    #[must_use]
    pub fn may_deny(self, reason: DenyReason) -> bool {
        match reason {
            // Any scheme can find the partition taken.
            DenyReason::Busy => true,
            // Any scheme can count/predict a too-high DoD.
            DenyReason::HighDod => true,
            // Only a predictor can be cold.
            DenyReason::ColdPredictor => matches!(self, Scheme::Predictive { .. }),
        }
    }
}

/// When the holder relinquishes the second-level partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReleasePolicy {
    /// Tenure is tied to the load that triggered the allocation: once
    /// its fill returns, the holder stops extending (capacity reverts
    /// to the first level) and the partition is handed over as soon as
    /// the extension drains. The default — it rotates ownership across
    /// competing memory-bound threads, which the fair-throughput
    /// results depend on. New misses discovered during tenure still
    /// overlap (the MLP benefit); continuing them requires
    /// re-requesting the partition like any other thread.
    TriggerServiced,
    /// Release once the holder's occupancy has drained back to the
    /// first level *and* it has no outstanding detected L2 miss
    /// (ablation; a thread with back-to-back misses can monopolize the
    /// partition indefinitely).
    DrainAndNoMiss,
    /// Release as soon as occupancy drains to the first level,
    /// regardless of outstanding misses (ablation).
    DrainOnly,
}

/// Full configuration of a two-level ROB.
#[derive(Clone, Copy, Debug)]
pub struct TwoLevelConfig {
    /// Private first-level entries per thread (32 in the paper).
    pub l1_entries: usize,
    /// Shared second-level entries allocated as a unit (384 = 96×4).
    pub l2_entries: usize,
    /// DoD threshold: allocate only when the count/prediction is
    /// *below* this value.
    pub dod_threshold: u32,
    /// The allocation scheme.
    pub scheme: Scheme,
    /// Recheck cadence for pending candidates (10 cycles in §5.2).
    pub recheck_interval: Cycle,
    /// Release policy.
    pub release: ReleasePolicy,
}

impl TwoLevelConfig {
    /// 2-Level R-ROB with the paper's best threshold (16).
    pub fn r_rob(threshold: u32) -> Self {
        TwoLevelConfig {
            l1_entries: 32,
            l2_entries: 384,
            dod_threshold: threshold,
            scheme: Scheme::Reactive {
                require_oldest: true,
                require_full: true,
            },
            recheck_interval: 10,
            release: ReleasePolicy::TriggerServiced,
        }
    }

    /// 2-Level Relaxed R-ROB (threshold 15 in the paper).
    pub fn relaxed_r_rob(threshold: u32) -> Self {
        TwoLevelConfig {
            scheme: Scheme::Reactive {
                require_oldest: true,
                require_full: false,
            },
            ..TwoLevelConfig::r_rob(threshold)
        }
    }

    /// 2-Level CDR-ROB with a 32-cycle count delay (threshold 15).
    pub fn cdr_rob(threshold: u32) -> Self {
        TwoLevelConfig {
            scheme: Scheme::CountDelayed { delay: 32 },
            ..TwoLevelConfig::r_rob(threshold)
        }
    }

    /// 2-Level P-ROB with the last-value predictor (thresholds 3/5).
    pub fn p_rob(threshold: u32) -> Self {
        TwoLevelConfig {
            scheme: Scheme::Predictive {
                predictor: DodPredictorKind::LastValue,
            },
            ..TwoLevelConfig::r_rob(threshold)
        }
    }
}

/// Aggregate statistics of a two-level allocator.
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoLevelStats {
    /// Second-level allocations performed.
    pub allocations: u64,
    /// Releases of the partition.
    pub releases: u64,
    /// Cycles the partition was held by any thread.
    pub held_cycles: u64,
    /// Candidates rejected because the counted/predicted DoD was at or
    /// above the threshold.
    pub rejected_dod: u64,
    /// Candidates that found the partition already taken.
    pub rejected_busy: u64,
    /// Predictor consultations that had information (predictive only).
    pub pred_hits: u64,
    /// Predictor consultations without information.
    pub pred_cold: u64,
    /// Verified predictions that matched the below-threshold decision.
    pub pred_correct: u64,
    /// Verified predictions total.
    pub pred_verified: u64,
    /// Predictor table lookups, counted inside the predictor itself
    /// (predictive only; includes both decision and verification
    /// lookups).
    pub cov_lookups: u64,
    /// Lookups that found a live tagged entry.
    pub cov_hits: u64,
}

impl TwoLevelStats {
    /// Verified prediction accuracy in `[0, 1]`.
    pub fn prediction_accuracy(&self) -> f64 {
        if self.pred_verified == 0 {
            0.0
        } else {
            self.pred_correct as f64 / self.pred_verified as f64
        }
    }

    /// Predictor coverage in `[0, 1]`: the fraction of table lookups
    /// that found information (`DodPredictor::coverage`).
    pub fn coverage(&self) -> f64 {
        if self.cov_lookups == 0 {
            0.0
        } else {
            self.cov_hits as f64 / self.cov_lookups as f64
        }
    }
}

/// A pending allocation candidate (a detected L2 miss awaiting its
/// conditions).
#[derive(Clone, Copy, Debug)]
struct Candidate {
    thread: ThreadId,
    tag: u64,
    /// Earliest cycle to (re)evaluate.
    check_at: Cycle,
    /// CDR: a count snapshot already taken (candidate passed the DoD
    /// test and is only waiting for the partition).
    counted_ok: bool,
    /// P-ROB: prediction outcome recorded for verification.
    predicted_below: Option<bool>,
}

/// The current tenure of the second-level partition.
#[derive(Clone, Copy, Debug)]
struct Tenure {
    thread: ThreadId,
    /// The load whose miss justified the allocation.
    trigger_tag: u64,
    /// When set, the trigger has been serviced (or squashed) at the
    /// recorded cycle: the holder no longer extends and the partition
    /// is released once drained.
    draining_since: Option<Cycle>,
}

impl Tenure {
    fn draining(&self) -> bool {
        self.draining_since.is_some()
    }
}

/// A read-only snapshot of the live tenure, for external checkers
/// (`smtsim-check`) and tests. Mirrors the internal [`Tenure`] record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenureView {
    /// Thread holding the second-level partition.
    pub thread: ThreadId,
    /// ROB tag of the load whose miss opened the tenure.
    pub trigger_tag: u64,
    /// Cycle the tenure stopped extending (trigger serviced or
    /// squashed), when that has happened.
    pub draining_since: Option<Cycle>,
}

/// The two-level ROB allocator. Plugs into the pipeline through
/// [`RobAllocator`].
pub struct TwoLevelRob {
    cfg: TwoLevelConfig,
    tenure: Option<Tenure>,
    candidates: Vec<Candidate>,
    /// Reusable buffer for the due-candidate sweep in `tick` (the
    /// evaluation loop may re-insert into `candidates`, so due entries
    /// are staged out first; reusing the stage avoids a per-tick heap
    /// allocation on the hot path).
    scratch_due: Vec<Candidate>,
    predictor: Option<Box<dyn DodPredictor>>,
    stats: TwoLevelStats,
    /// When armed (via [`RobAllocator::set_tracing`]), allocation
    /// decisions append [`TraceEvent`]s here for the simulator to drain
    /// once per cycle.
    tracing: bool,
    trace: Vec<(Cycle, TraceEvent)>,
}

impl TwoLevelRob {
    /// Builds an allocator from a configuration.
    pub fn new(cfg: TwoLevelConfig) -> Self {
        assert!(cfg.l1_entries > 0 && cfg.l2_entries > 0);
        assert!(cfg.recheck_interval > 0);
        let predictor: Option<Box<dyn DodPredictor>> = match cfg.scheme {
            Scheme::Predictive { predictor } => Some(match predictor {
                DodPredictorKind::LastValue => Box::new(LastValueDod::icpp08()),
                DodPredictorKind::ThresholdBit => {
                    Box::new(ThresholdBitDod::new(2048, cfg.dod_threshold))
                }
                DodPredictorKind::Path => Box::new(PathDod::new(4096)),
            }),
            _ => None,
        };
        TwoLevelRob {
            cfg,
            tenure: None,
            candidates: Vec::new(),
            scratch_due: Vec::new(),
            predictor,
            stats: TwoLevelStats::default(),
            tracing: false,
            trace: Vec::new(),
        }
    }

    /// Buffers a trace event when tracing is armed.
    fn emit(&mut self, now: Cycle, ev: TraceEvent) {
        if self.tracing {
            self.trace.push((now, ev));
        }
    }

    /// Traces the DoD count taken for an allocation decision.
    fn sample_count(&mut self, c: Candidate, count: u32, now: Cycle) {
        if count != u32::MAX {
            self.emit(
                now,
                TraceEvent::DodSampled {
                    thread: c.thread,
                    tag: c.tag,
                    value: count,
                    source: DodSource::CounterAtDecision,
                },
            );
        }
    }

    /// Records a DoD-threshold rejection (stat + trace event).
    fn reject_dod(&mut self, c: Candidate, now: Cycle) {
        self.stats.rejected_dod += 1;
        self.emit(
            now,
            TraceEvent::L2RobDenied {
                thread: c.thread,
                tag: c.tag,
                reason: DenyReason::HighDod,
            },
        );
    }

    /// Current holder of the second-level partition.
    pub fn owner(&self) -> Option<ThreadId> {
        self.tenure.map(|t| t.thread)
    }

    /// Snapshot of the live tenure, if any (state exposure for the
    /// protocol model checker).
    pub fn tenure_view(&self) -> Option<TenureView> {
        self.tenure.map(|t| TenureView {
            thread: t.thread,
            trigger_tag: t.trigger_tag,
            draining_since: t.draining_since,
        })
    }

    /// Writes the `(thread, tag)` of every pending allocation
    /// candidate into `out` (cleared first), sorted for deterministic
    /// inspection. Caller-provided storage so per-cycle inspectors can
    /// reuse one buffer instead of allocating on every call.
    pub fn candidate_tags_into(&self, out: &mut Vec<(ThreadId, u64)>) {
        out.clear();
        out.extend(self.candidates.iter().map(|c| (c.thread, c.tag)));
        out.sort_unstable();
    }

    /// Statistics so far. Coverage counters are read out of the
    /// predictor at call time, so they reflect every lookup up to now.
    pub fn stats(&self) -> TwoLevelStats {
        let mut s = self.stats;
        if let Some(p) = &self.predictor {
            (s.cov_lookups, s.cov_hits) = p.coverage();
        }
        s
    }

    /// The configuration.
    pub fn config(&self) -> &TwoLevelConfig {
        &self.cfg
    }

    /// The DoD-counter scan window: the first-level entries behind the
    /// load (the paper's 5-bit counter for a 32-entry first level).
    fn count_window(&self) -> usize {
        self.cfg.l1_entries - 1
    }

    fn allocate(&mut self, thread: ThreadId, trigger_tag: u64, now: Cycle) {
        debug_assert!(self.tenure.is_none());
        self.tenure = Some(Tenure {
            thread,
            trigger_tag,
            draining_since: None,
        });
        self.stats.allocations += 1;
        self.emit(
            now,
            TraceEvent::L2RobAllocated {
                thread,
                tag: trigger_tag,
            },
        );
        // Other candidates of the same thread are subsumed by this
        // tenure; other threads keep waiting for the partition.
        self.candidates.retain(|c| c.thread != thread);
    }

    /// Evaluates one candidate. Returns `true` when the candidate is
    /// finished (allocated or rejected) and should be removed.
    fn evaluate(
        &mut self,
        c: Candidate,
        view: &dyn RobQuery,
        now: Cycle,
    ) -> (bool, Option<Candidate>) {
        if !view.in_flight(c.thread, c.tag) {
            return (true, None);
        }
        if self.tenure.is_some() {
            // Partition busy: keep the candidacy alive (it may free
            // before the miss is serviced).
            self.stats.rejected_busy += 1;
            self.emit(
                now,
                TraceEvent::L2RobDenied {
                    thread: c.thread,
                    tag: c.tag,
                    reason: DenyReason::Busy,
                },
            );
            return (
                false,
                Some(Candidate {
                    check_at: now + self.cfg.recheck_interval,
                    ..c
                }),
            );
        }
        match self.cfg.scheme {
            Scheme::Reactive {
                require_oldest,
                require_full,
            } => {
                if require_oldest && view.oldest_tag(c.thread) != Some(c.tag) {
                    return (
                        false,
                        Some(Candidate {
                            check_at: now + self.cfg.recheck_interval,
                            ..c
                        }),
                    );
                }
                if require_full && view.occupancy(c.thread) < self.cfg.l1_entries {
                    return (
                        false,
                        Some(Candidate {
                            check_at: now + self.cfg.recheck_interval,
                            ..c
                        }),
                    );
                }
                let count = view
                    .count_unexecuted_younger(c.thread, c.tag, self.count_window())
                    .unwrap_or(u32::MAX);
                self.sample_count(c, count, now);
                if count < self.cfg.dod_threshold {
                    self.allocate(c.thread, c.tag, now);
                } else {
                    self.reject_dod(c, now);
                }
                (true, None)
            }
            Scheme::CountDelayed { .. } => {
                if c.counted_ok {
                    self.allocate(c.thread, c.tag, now);
                    return (true, None);
                }
                let count = view
                    .count_unexecuted_younger(c.thread, c.tag, self.count_window())
                    .unwrap_or(u32::MAX);
                self.sample_count(c, count, now);
                if count < self.cfg.dod_threshold {
                    self.allocate(c.thread, c.tag, now);
                } else {
                    self.reject_dod(c, now);
                }
                (true, None)
            }
            Scheme::Predictive { .. } => {
                // Predictive candidates are resolved at miss detection;
                // anything still pending passed the prediction and was
                // only waiting for the partition.
                debug_assert_eq!(c.predicted_below, Some(true));
                self.allocate(c.thread, c.tag, now);
                (true, None)
            }
        }
    }
}

impl RobAllocator for TwoLevelRob {
    fn capacity(&self, thread: ThreadId) -> usize {
        match self.tenure {
            Some(t) if t.thread == thread && !t.draining() => {
                self.cfg.l1_entries + self.cfg.l2_entries
            }
            _ => self.cfg.l1_entries,
        }
    }

    fn tick(&mut self, view: &dyn RobQuery, now: Cycle) {
        // Release check.
        if let Some(t) = self.tenure {
            self.stats.held_cycles += 1;
            let drained = view.occupancy(t.thread) <= self.cfg.l1_entries;
            let release = match self.cfg.release {
                ReleasePolicy::TriggerServiced => {
                    // The trigger may also leave flight by committing or
                    // squashing without this allocator seeing the fill
                    // (e.g. store-forwarded edge cases); treat that as
                    // serviced.
                    let over = t.draining() || !view.in_flight(t.thread, t.trigger_tag);
                    if over {
                        if let Some(ten) = self.tenure.as_mut() {
                            ten.draining_since.get_or_insert(now);
                        }
                    }
                    over && drained
                }
                ReleasePolicy::DrainAndNoMiss => drained && !view.has_pending_l2_miss(t.thread),
                ReleasePolicy::DrainOnly => drained,
            };
            if release {
                self.tenure = None;
                self.stats.releases += 1;
                self.emit(
                    now,
                    TraceEvent::L2RobReleased {
                        thread: t.thread,
                        trigger_tag: t.trigger_tag,
                    },
                );
            }
        }
        // Candidate evaluation.
        if self.candidates.is_empty() {
            return;
        }
        self.tick_candidates_now(view, now);
    }

    fn on_l2_miss(&mut self, view: &dyn RobQuery, ev: MissEvent, now: Cycle) {
        // The hardware cannot know a path is wrong, but modeling
        // allocations for doomed loads only adds noise to the state
        // machine; the squash hook would immediately clean them up.
        if ev.wrong_path {
            return;
        }
        match self.cfg.scheme {
            Scheme::Reactive { .. } => {
                self.candidates.push(Candidate {
                    thread: ev.thread,
                    tag: ev.tag,
                    check_at: now, // conditions checked the first cycle
                    counted_ok: false,
                    predicted_below: None,
                });
                // Evaluate immediately ("checked the first cycle the L2
                // miss is detected").
                self.tick_candidates_now(view, now);
            }
            Scheme::CountDelayed { delay } => {
                self.candidates.push(Candidate {
                    thread: ev.thread,
                    tag: ev.tag,
                    check_at: now + delay,
                    counted_ok: false,
                    predicted_below: None,
                });
            }
            Scheme::Predictive { .. } => {
                let pred = self
                    .predictor
                    .as_mut()
                    .expect("predictive scheme has predictor")
                    .predict_below(ev.pc, ev.hist, self.cfg.dod_threshold);
                match pred {
                    None => {
                        self.stats.pred_cold += 1;
                        self.emit(
                            now,
                            TraceEvent::L2RobDenied {
                                thread: ev.thread,
                                tag: ev.tag,
                                reason: DenyReason::ColdPredictor,
                            },
                        );
                    }
                    Some(below) => {
                        self.stats.pred_hits += 1;
                        // The predictor yields a below-threshold verdict,
                        // not a numeric DoD; trace it as 0/1.
                        self.emit(
                            now,
                            TraceEvent::DodSampled {
                                thread: ev.thread,
                                tag: ev.tag,
                                value: u32::from(below),
                                source: DodSource::Predictor,
                            },
                        );
                        if below {
                            if self.tenure.is_none() {
                                self.allocate(ev.thread, ev.tag, now);
                            } else {
                                self.stats.rejected_busy += 1;
                                self.emit(
                                    now,
                                    TraceEvent::L2RobDenied {
                                        thread: ev.thread,
                                        tag: ev.tag,
                                        reason: DenyReason::Busy,
                                    },
                                );
                                // Keep waiting for the partition.
                                self.candidates.push(Candidate {
                                    thread: ev.thread,
                                    tag: ev.tag,
                                    check_at: now + self.cfg.recheck_interval,
                                    counted_ok: true,
                                    predicted_below: Some(true),
                                });
                            }
                        } else {
                            self.stats.rejected_dod += 1;
                            self.emit(
                                now,
                                TraceEvent::L2RobDenied {
                                    thread: ev.thread,
                                    tag: ev.tag,
                                    reason: DenyReason::HighDod,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    fn on_l2_fill(&mut self, _view: &dyn RobQuery, ev: MissEvent, counted_dod: u32, now: Cycle) {
        self.candidates
            .retain(|c| !(c.thread == ev.thread && c.tag == ev.tag));
        // End of tenure: the triggering miss has been serviced.
        if let Some(t) = self.tenure.as_mut() {
            if t.thread == ev.thread && t.trigger_tag == ev.tag {
                t.draining_since.get_or_insert(now);
            }
        }
        if ev.wrong_path {
            return;
        }
        if let Some(p) = self.predictor.as_mut() {
            // Verification count "several cycles prior to the completion
            // of the miss service" (we take it at service completion —
            // the same window in this model). Train, and score the
            // prediction made at detection time.
            if let Scheme::Predictive { .. } = self.cfg.scheme {
                let predicted = p.predict_below(ev.pc, ev.hist, self.cfg.dod_threshold);
                if let Some(below) = predicted {
                    self.stats.pred_verified += 1;
                    if below == (counted_dod < self.cfg.dod_threshold) {
                        self.stats.pred_correct += 1;
                    }
                }
                p.update(ev.pc, ev.hist, counted_dod);
            }
        }
    }

    fn on_squash(&mut self, thread: ThreadId, first_tag: u64, now: Cycle) {
        self.candidates
            .retain(|c| !(c.thread == thread && c.tag >= first_tag));
        // A squashed trigger ends the tenure; the partition is
        // reclaimed by the drain check in `tick`.
        if let Some(t) = self.tenure.as_mut() {
            if t.thread == thread && t.trigger_tag >= first_tag {
                t.draining_since.get_or_insert(now);
            }
        }
    }

    fn name(&self) -> String {
        match self.cfg.scheme {
            Scheme::Reactive {
                require_full: true, ..
            } => format!("2-Level R-ROB{}", self.cfg.dod_threshold),
            Scheme::Reactive {
                require_full: false,
                ..
            } => format!("2-Level Relaxed R-ROB{}", self.cfg.dod_threshold),
            Scheme::CountDelayed { .. } => format!("2-Level CDR-ROB{}", self.cfg.dod_threshold),
            Scheme::Predictive { .. } => format!("2-Level P-ROB{}", self.cfg.dod_threshold),
        }
    }

    fn max_capacity(&self) -> usize {
        self.cfg.l1_entries + self.cfg.l2_entries
    }

    fn conservation_bound(&self, num_threads: usize) -> usize {
        // The second level is physically one partition: however tenure
        // moves around, the machine can never hold more than every
        // thread's private first level plus the shared entries once.
        num_threads * self.cfg.l1_entries + self.cfg.l2_entries
    }

    fn audit(&self, view: &dyn RobQuery) -> Option<String> {
        // Single-owner tenure bookkeeping: allocations and releases
        // must bracket the live tenure exactly.
        let live = self.tenure.is_some() as u64;
        if self.stats.allocations != self.stats.releases + live {
            return Some(format!(
                "tenure accounting: {} allocations vs {} releases with {} live tenure",
                self.stats.allocations, self.stats.releases, live
            ));
        }
        if let Some(t) = self.tenure {
            if t.thread >= view.num_threads() {
                return Some(format!("tenure held by nonexistent thread {}", t.thread));
            }
        }
        // Exclusive second level: every thread that does not hold the
        // partition must fit in its private first level. (The holder may
        // legally exceed it, including while draining.)
        let owner = self.tenure.map(|t| t.thread);
        for t in 0..view.num_threads() {
            if Some(t) != owner && view.occupancy(t) > self.cfg.l1_entries {
                return Some(format!(
                    "t{t}: occupancy {} exceeds the private first level ({}) \
                     without holding the partition (owner={owner:?})",
                    view.occupancy(t),
                    self.cfg.l1_entries
                ));
            }
        }
        None
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
        if !enabled {
            self.trace.clear();
        }
    }

    fn drain_trace(&mut self) -> Vec<(Cycle, TraceEvent)> {
        std::mem::take(&mut self.trace)
    }

    /// Quiescence horizon for the cycle-skip engine: a non-mutating
    /// mirror of [`TwoLevelRob::tick`]. On a machine with no events,
    /// commits, dispatches, fetches or squashes, every `tick` input
    /// read here (occupancy, trigger in-flight status, pending-miss
    /// flag) is frozen, so:
    ///
    /// - a tick that would release the partition, or record the start
    ///   of a drain (`draining_since`), acts *immediately* — report a
    ///   horizon of 0 so the skip aborts and steps it normally;
    /// - otherwise the release verdict stays `false` for every skipped
    ///   cycle and the only per-cycle effect is the `held_cycles`
    ///   accumulator, replicated by
    ///   [`RobAllocator::on_cycles_skipped`];
    /// - pending candidates are untouchable until their earliest
    ///   `check_at`, which bounds the horizon.
    fn skip_quiesce(&self, view: &dyn RobQuery) -> Option<Cycle> {
        if let Some(t) = self.tenure {
            let drained = view.occupancy(t.thread) <= self.cfg.l1_entries;
            let acts_now = match self.cfg.release {
                ReleasePolicy::TriggerServiced => {
                    let over = t.draining() || !view.in_flight(t.thread, t.trigger_tag);
                    // `over` with no drain start recorded writes
                    // `draining_since`; `over && drained` releases.
                    over && (t.draining_since.is_none() || drained)
                }
                ReleasePolicy::DrainAndNoMiss => drained && !view.has_pending_l2_miss(t.thread),
                ReleasePolicy::DrainOnly => drained,
            };
            if acts_now {
                return Some(0);
            }
        }
        Some(
            self.candidates
                .iter()
                .map(|c| c.check_at)
                .min()
                .unwrap_or(Cycle::MAX),
        )
    }

    fn on_cycles_skipped(&mut self, skipped: u64) {
        // Mirrors the `held_cycles += 1` each skipped tick would have
        // executed while the tenure is held.
        if self.tenure.is_some() {
            self.stats.held_cycles += skipped;
        }
    }
}

impl TwoLevelRob {
    /// Due-candidate sweep, used by `tick` every cycle and by the
    /// reactive scheme immediately at miss-detection time. Evaluation
    /// may re-insert a deferred candidate, so the due set is staged
    /// through the reusable scratch buffer first.
    fn tick_candidates_now(&mut self, view: &dyn RobQuery, now: Cycle) {
        let mut due = std::mem::take(&mut self.scratch_due);
        due.clear();
        due.extend(
            self.candidates
                .iter()
                .copied()
                .filter(|c| c.check_at <= now),
        );
        if !due.is_empty() {
            self.candidates.retain(|c| c.check_at > now);
            for &c in &due {
                let (_done, keep) = self.evaluate(c, view, now);
                if let Some(k) = keep {
                    self.candidates.push(k);
                }
            }
        }
        self.scratch_due = due;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted RobQuery for unit-testing the allocator state machine
    /// without a pipeline.
    struct FakeView {
        occupancy: Vec<usize>,
        oldest: Vec<Option<u64>>,
        counts: Vec<u32>,
        in_flight: Vec<Vec<u64>>,
        pending_miss: Vec<bool>,
    }

    impl FakeView {
        fn new(threads: usize) -> Self {
            FakeView {
                occupancy: vec![0; threads],
                oldest: vec![None; threads],
                counts: vec![0; threads],
                in_flight: vec![Vec::new(); threads],
                pending_miss: vec![false; threads],
            }
        }
    }

    impl RobQuery for FakeView {
        fn num_threads(&self) -> usize {
            self.occupancy.len()
        }
        fn occupancy(&self, t: ThreadId) -> usize {
            self.occupancy[t]
        }
        fn oldest_tag(&self, t: ThreadId) -> Option<u64> {
            self.oldest[t]
        }
        fn in_flight(&self, t: ThreadId, tag: u64) -> bool {
            self.in_flight[t].contains(&tag)
        }
        fn count_unexecuted_younger(&self, t: ThreadId, tag: u64, _w: usize) -> Option<u32> {
            self.in_flight(t, tag).then_some(self.counts[t])
        }
        fn has_pending_l2_miss(&self, t: ThreadId) -> bool {
            self.pending_miss[t]
        }
    }

    fn miss(thread: ThreadId, tag: u64) -> MissEvent {
        MissEvent {
            thread,
            tag,
            pc: 0x1000 + tag * 4,
            hist: 0,
            wrong_path: false,
        }
    }

    #[test]
    fn reactive_allocates_when_all_conditions_met() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::r_rob(16));
        let mut v = FakeView::new(4);
        v.in_flight[1] = vec![7];
        v.oldest[1] = Some(7);
        v.occupancy[1] = 32;
        v.counts[1] = 5;
        a.on_l2_miss(&v, miss(1, 7), 100);
        assert_eq!(a.owner(), Some(1));
        assert_eq!(a.capacity(1), 32 + 384);
        assert_eq!(a.capacity(0), 32);
        assert_eq!(a.stats().allocations, 1);
    }

    #[test]
    fn reactive_rejects_high_dod() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::r_rob(16));
        let mut v = FakeView::new(4);
        v.in_flight[1] = vec![7];
        v.oldest[1] = Some(7);
        v.occupancy[1] = 32;
        v.counts[1] = 16; // == threshold ⇒ not below ⇒ reject
        a.on_l2_miss(&v, miss(1, 7), 100);
        assert_eq!(a.owner(), None);
        assert_eq!(a.stats().rejected_dod, 1);
    }

    #[test]
    fn reactive_waits_for_full_and_oldest_then_rechecks() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::r_rob(16));
        let mut v = FakeView::new(4);
        v.in_flight[1] = vec![7];
        v.oldest[1] = Some(3); // not oldest yet
        v.occupancy[1] = 32;
        v.counts[1] = 2;
        a.on_l2_miss(&v, miss(1, 7), 100);
        assert_eq!(a.owner(), None);
        // Conditions met later; recheck fires at +10.
        v.oldest[1] = Some(7);
        a.tick(&v, 105);
        assert_eq!(a.owner(), None, "recheck not due yet");
        a.tick(&v, 110);
        assert_eq!(a.owner(), Some(1));
    }

    #[test]
    fn relaxed_ignores_full_condition() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::relaxed_r_rob(15));
        let mut v = FakeView::new(4);
        v.in_flight[2] = vec![9];
        v.oldest[2] = Some(9);
        v.occupancy[2] = 4; // far from full
        v.counts[2] = 3;
        v.pending_miss[2] = true;
        a.on_l2_miss(&v, miss(2, 9), 50);
        assert_eq!(a.owner(), Some(2), "allocated the cycle the miss is seen");
        a.tick(&v, 50);
        assert_eq!(a.owner(), Some(2), "held while the miss is outstanding");
    }

    #[test]
    fn cdr_counts_after_delay() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::cdr_rob(15));
        let mut v = FakeView::new(4);
        v.in_flight[0] = vec![5];
        v.counts[0] = 20; // high at detection...
        a.on_l2_miss(&v, miss(0, 5), 200);
        a.tick(&v, 210);
        assert_eq!(a.owner(), None, "count not taken before the delay");
        v.counts[0] = 4; // ...but low at snapshot time
        a.tick(&v, 232);
        assert_eq!(a.owner(), Some(0));
    }

    #[test]
    fn partition_is_exclusive_and_waiters_get_it_on_release() {
        let mut cfg = TwoLevelConfig::relaxed_r_rob(15);
        cfg.release = ReleasePolicy::DrainAndNoMiss;
        let mut a = TwoLevelRob::new(cfg);
        let mut v = FakeView::new(4);
        for t in [0usize, 1] {
            v.in_flight[t] = vec![1];
            v.oldest[t] = Some(1);
            v.occupancy[t] = 33;
            v.counts[t] = 1;
        }
        a.on_l2_miss(&v, miss(0, 1), 10);
        assert_eq!(a.owner(), Some(0));
        a.on_l2_miss(&v, miss(1, 1), 11);
        assert_eq!(a.owner(), Some(0), "partition is exclusive");
        assert!(a.stats().rejected_busy >= 1);
        // Thread 0 drains and its miss clears: release, and thread 1's
        // waiting candidacy wins the partition in the same tick.
        v.occupancy[0] = 10;
        v.pending_miss[0] = false;
        v.pending_miss[1] = true;
        a.tick(&v, 21);
        assert_eq!(a.owner(), Some(1));
        assert_eq!(a.stats().releases, 1);
        assert_eq!(a.stats().allocations, 2);
    }

    #[test]
    fn release_waits_for_drain_and_miss() {
        let mut cfg = TwoLevelConfig::r_rob(16);
        cfg.release = ReleasePolicy::DrainAndNoMiss;
        let mut a = TwoLevelRob::new(cfg);
        let mut v = FakeView::new(4);
        v.in_flight[1] = vec![7];
        v.oldest[1] = Some(7);
        v.occupancy[1] = 32;
        v.counts[1] = 0;
        a.on_l2_miss(&v, miss(1, 7), 0);
        assert_eq!(a.owner(), Some(1));
        // Still above L1 occupancy: hold.
        v.occupancy[1] = 100;
        v.pending_miss[1] = true;
        a.tick(&v, 1);
        assert_eq!(a.owner(), Some(1));
        // Drained but another miss pending: hold (MLP chaining).
        v.occupancy[1] = 20;
        a.tick(&v, 2);
        assert_eq!(a.owner(), Some(1));
        // Drained and clear: release.
        v.pending_miss[1] = false;
        a.tick(&v, 3);
        assert_eq!(a.owner(), None);
        assert!(a.stats().held_cycles >= 3);
    }

    #[test]
    fn trigger_serviced_tenure_rotates() {
        // Default policy: tenure ends when the triggering load fills,
        // capacity reverts immediately, and the partition is handed
        // over once the extension drains.
        let mut a = TwoLevelRob::new(TwoLevelConfig::relaxed_r_rob(15));
        let mut v = FakeView::new(4);
        v.in_flight[0] = vec![1];
        v.oldest[0] = Some(1);
        v.occupancy[0] = 33;
        v.counts[0] = 1;
        v.pending_miss[0] = true;
        a.on_l2_miss(&v, miss(0, 1), 10);
        assert_eq!(a.owner(), Some(0));
        assert_eq!(a.capacity(0), 32 + 384);
        // The trigger fills: holder stops extending at once.
        a.on_l2_fill(&v, miss(0, 1), 2, 540);
        assert_eq!(a.owner(), Some(0), "still occupied until drained");
        assert_eq!(a.capacity(0), 32, "extension stops when trigger serviced");
        // Another back-to-back miss does NOT prolong the tenure.
        v.in_flight[0] = vec![2];
        a.on_l2_miss(&v, miss(0, 2), 545);
        assert_eq!(a.capacity(0), 32);
        // Drain completes: released; the waiting candidate re-competes.
        v.occupancy[0] = 12;
        a.tick(&v, 560);
        assert_eq!(a.owner(), None);
        assert_eq!(a.stats().releases, 1);
    }

    #[test]
    fn trigger_leaving_flight_ends_tenure() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::relaxed_r_rob(15));
        let mut v = FakeView::new(2);
        v.in_flight[0] = vec![1];
        v.oldest[0] = Some(1);
        v.occupancy[0] = 40;
        a.on_l2_miss(&v, miss(0, 1), 10);
        assert_eq!(a.owner(), Some(0));
        // Trigger commits/squashes without a fill callback.
        v.in_flight[0] = vec![];
        v.occupancy[0] = 8;
        a.tick(&v, 20);
        assert_eq!(a.owner(), None);
    }

    #[test]
    fn drain_only_release_policy() {
        let mut cfg = TwoLevelConfig::r_rob(16);
        cfg.release = ReleasePolicy::DrainOnly;
        let mut a = TwoLevelRob::new(cfg);
        let mut v = FakeView::new(4);
        v.in_flight[1] = vec![7];
        v.oldest[1] = Some(7);
        v.occupancy[1] = 32;
        a.on_l2_miss(&v, miss(1, 7), 0);
        v.occupancy[1] = 12;
        v.pending_miss[1] = true; // ignored by DrainOnly
        a.tick(&v, 1);
        assert_eq!(a.owner(), None);
    }

    #[test]
    fn predictive_cold_start_then_learns() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::p_rob(5));
        let mut v = FakeView::new(4);
        v.in_flight[3] = vec![11];
        // Cold predictor: no allocation.
        a.on_l2_miss(&v, miss(3, 11), 10);
        assert_eq!(a.owner(), None);
        assert_eq!(a.stats().pred_cold, 1);
        // Train with a small count at fill.
        a.on_l2_fill(&v, miss(3, 11), 2, 500);
        // Next instance of the same static load: predicted below.
        v.in_flight[3] = vec![12];
        a.on_l2_miss(&v, miss(3, 11), 600); // same pc (derived from tag)
        assert_eq!(a.owner(), Some(3));
        assert_eq!(a.stats().pred_hits, 1);
    }

    #[test]
    fn predictive_rejects_learned_high_dod() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::p_rob(3));
        let v = FakeView::new(4);
        a.on_l2_fill(&v, miss(0, 4), 30, 100);
        a.on_l2_miss(&v, miss(0, 4), 200);
        assert_eq!(a.owner(), None);
        assert_eq!(a.stats().rejected_dod, 1);
    }

    #[test]
    fn predictive_verification_scores_accuracy() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::p_rob(5));
        let v = FakeView::new(4);
        a.on_l2_fill(&v, miss(0, 4), 2, 100); // learn "below"
        a.on_l2_fill(&v, miss(0, 4), 2, 200); // verify: below == below ✓
        assert_eq!(a.stats().pred_verified, 1);
        assert_eq!(a.stats().pred_correct, 1);
        a.on_l2_fill(&v, miss(0, 4), 9, 300); // verify: predicted below, was above ✗
        assert_eq!(a.stats().pred_verified, 2);
        assert_eq!(a.stats().pred_correct, 1);
        assert!((a.stats().prediction_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn squash_drops_candidates() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::cdr_rob(15));
        let mut v = FakeView::new(4);
        v.in_flight[0] = vec![5];
        a.on_l2_miss(&v, miss(0, 5), 0);
        a.on_squash(0, 3, 1);
        // Candidate gone: the delayed count never allocates.
        v.counts[0] = 0;
        a.tick(&v, 100);
        assert_eq!(a.owner(), None);
    }

    #[test]
    fn wrong_path_misses_ignored() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::relaxed_r_rob(15));
        let mut v = FakeView::new(4);
        v.in_flight[0] = vec![5];
        v.oldest[0] = Some(5);
        let mut ev = miss(0, 5);
        ev.wrong_path = true;
        a.on_l2_miss(&v, ev, 0);
        a.tick(&v, 50);
        assert_eq!(a.owner(), None);
    }

    #[test]
    fn dead_candidates_are_dropped() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::r_rob(16));
        let mut v = FakeView::new(4);
        v.in_flight[0] = vec![5];
        v.oldest[0] = Some(3);
        v.occupancy[0] = 32;
        a.on_l2_miss(&v, miss(0, 5), 0);
        // Load leaves flight (filled + committed) before conditions met.
        v.in_flight[0] = vec![];
        a.tick(&v, 10);
        a.tick(&v, 20);
        assert_eq!(a.owner(), None);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(
            TwoLevelRob::new(TwoLevelConfig::r_rob(16)).name(),
            "2-Level R-ROB16"
        );
        assert_eq!(
            TwoLevelRob::new(TwoLevelConfig::relaxed_r_rob(15)).name(),
            "2-Level Relaxed R-ROB15"
        );
        assert_eq!(
            TwoLevelRob::new(TwoLevelConfig::cdr_rob(15)).name(),
            "2-Level CDR-ROB15"
        );
        assert_eq!(
            TwoLevelRob::new(TwoLevelConfig::p_rob(3)).name(),
            "2-Level P-ROB3"
        );
        assert_eq!(
            TwoLevelRob::new(TwoLevelConfig::r_rob(16)).max_capacity(),
            416
        );
    }

    #[test]
    fn tenure_view_exposes_drain_timestamp() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::relaxed_r_rob(15));
        let mut v = FakeView::new(2);
        v.in_flight[0] = vec![1];
        v.oldest[0] = Some(1);
        v.occupancy[0] = 40;
        a.on_l2_miss(&v, miss(0, 1), 10);
        let t = a.tenure_view().expect("tenure live after allocation");
        assert_eq!((t.thread, t.trigger_tag, t.draining_since), (0, 1, None));
        // The squash of the trigger stamps the start of the drain.
        a.on_squash(0, 1, 25);
        assert_eq!(a.tenure_view().unwrap().draining_since, Some(25));
        v.occupancy[0] = 4;
        a.tick(&v, 30);
        assert_eq!(a.tenure_view(), None, "released after drain");
    }

    #[test]
    fn candidate_tags_are_sorted_and_tracked() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::cdr_rob(15));
        let mut v = FakeView::new(4);
        v.in_flight[2] = vec![9];
        v.in_flight[0] = vec![5];
        a.on_l2_miss(&v, miss(2, 9), 0);
        a.on_l2_miss(&v, miss(0, 5), 0);
        let mut tags = Vec::new();
        a.candidate_tags_into(&mut tags);
        assert_eq!(tags, vec![(0, 5), (2, 9)]);
        a.on_squash(0, 5, 1);
        a.candidate_tags_into(&mut tags);
        assert_eq!(tags, vec![(2, 9)]);
    }

    #[test]
    fn skip_quiesce_mirrors_tick_action_cycles() {
        // No tenure, no candidates: quiescent forever.
        let a = TwoLevelRob::new(TwoLevelConfig::r_rob(16));
        let v = FakeView::new(2);
        assert_eq!(a.skip_quiesce(&v), Some(Cycle::MAX));

        // A pending CDR candidate bounds the horizon at its check_at.
        let mut a = TwoLevelRob::new(TwoLevelConfig::cdr_rob(15));
        let mut v = FakeView::new(2);
        v.in_flight[0] = vec![5];
        a.on_l2_miss(&v, miss(0, 5), 100);
        assert_eq!(a.skip_quiesce(&v), Some(132), "check_at = now + delay");

        // A held tenure whose trigger is still in flight (not drained,
        // not serviced) only accumulates held_cycles: horizon open, and
        // on_cycles_skipped replicates the accumulator.
        let mut a = TwoLevelRob::new(TwoLevelConfig::r_rob(16));
        let mut v = FakeView::new(2);
        v.in_flight[0] = vec![1];
        v.oldest[0] = Some(1);
        v.occupancy[0] = 40;
        a.on_l2_miss(&v, miss(0, 1), 10);
        assert_eq!(a.owner(), Some(0));
        assert_eq!(a.skip_quiesce(&v), Some(Cycle::MAX));
        let before = a.stats().held_cycles;
        a.on_cycles_skipped(7);
        assert_eq!(a.stats().held_cycles, before + 7);

        // Once the trigger leaves flight the very next tick stamps the
        // drain start: the allocator acts now, vetoing any skip.
        v.in_flight[0] = vec![];
        assert_eq!(a.skip_quiesce(&v), Some(0));
    }

    #[test]
    fn deny_reason_soundness_table() {
        let predictive = TwoLevelConfig::p_rob(5).scheme;
        let reactive = TwoLevelConfig::r_rob(16).scheme;
        let cdr = TwoLevelConfig::cdr_rob(15).scheme;
        for r in DenyReason::ALL {
            assert!(predictive.may_deny(r), "{r:?} reachable under P-ROB");
        }
        for s in [reactive, cdr] {
            assert!(s.may_deny(DenyReason::Busy));
            assert!(s.may_deny(DenyReason::HighDod));
            assert!(!s.may_deny(DenyReason::ColdPredictor));
        }
        assert_eq!(reactive.kind(), SchemeKind::Reactive);
        assert_eq!(cdr.kind(), SchemeKind::CountDelayed);
        assert_eq!(predictive.kind(), SchemeKind::Predictive);
    }

    #[test]
    fn conservation_bound_counts_shared_level_once() {
        let a = TwoLevelRob::new(TwoLevelConfig::r_rob(16));
        assert_eq!(a.conservation_bound(4), 4 * 32 + 384);
        assert_eq!(a.conservation_bound(1), 32 + 384);
    }

    #[test]
    fn audit_passes_consistent_states_and_catches_oversubscription() {
        let mut a = TwoLevelRob::new(TwoLevelConfig::relaxed_r_rob(15));
        let mut v = FakeView::new(2);
        assert_eq!(a.audit(&v), None, "idle allocator is consistent");
        v.in_flight[0] = vec![1];
        v.oldest[0] = Some(1);
        v.occupancy[0] = 30;
        a.on_l2_miss(&v, miss(0, 1), 10);
        assert_eq!(a.owner(), Some(0));
        v.occupancy[0] = 200; // holder may exceed its first level
        assert_eq!(a.audit(&v), None);
        // A non-owner beyond its private first level means dispatch is
        // consuming second-level entries the policy never granted.
        v.occupancy[1] = 40;
        let detail = a.audit(&v).expect("oversubscription must be caught");
        assert!(detail.contains("t1"), "{detail}");
    }

    #[test]
    fn path_and_bit_predictors_construct() {
        for kind in [DodPredictorKind::ThresholdBit, DodPredictorKind::Path] {
            let mut cfg = TwoLevelConfig::p_rob(5);
            cfg.scheme = Scheme::Predictive { predictor: kind };
            let mut a = TwoLevelRob::new(cfg);
            let v = FakeView::new(2);
            a.on_l2_fill(&v, miss(0, 1), 1, 10);
            a.on_l2_miss(&v, miss(0, 1), 20);
            assert_eq!(a.owner(), Some(0), "{kind:?}");
        }
    }
}
