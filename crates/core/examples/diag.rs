//! Single-mix diagnostic dump: per-thread IPC, stalls and DoD stats
//! under one configuration (dev tool, not a figure).
use smtsim_rob2::*;

fn main() {
    let mix: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let budget: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let mut lab = Lab::new(42).with_budgets(budget, budget);
    for cfg in [
        RobConfig::Baseline(32),
        RobConfig::Baseline(128),
        RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
        RobConfig::TwoLevel(TwoLevelConfig::cdr_rob(15)),
        RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)),
    ] {
        let r = lab.run_mix(mix, cfg);
        println!(
            "== {} Mix{} FT={:.4} cycles={} iq_avg={:.1} iq_full={}",
            r.config,
            mix,
            r.ft,
            r.stats.cycles,
            r.stats.avg_iq_occupancy(),
            r.stats.iq_full_cycles
        );
        for (i, t) in r.stats.threads.iter().enumerate() {
            println!("  t{i}: ipc={:.3} st={:.3} w={:.3} commit={} l2m={} robstall={} regstall={} iqstall={} capstall={} lsqstall={} robavg={:.1}",
                r.ipc[i], r.single_ipc[i], r.weighted[i], t.committed, t.l2_misses,
                t.rob_stall_cycles, t.stall_regs, t.stall_iq, t.stall_caps, t.stall_lsq,
                t.rob_occupancy_sum as f64 / r.stats.cycles as f64);
        }
        if let Some(tl) = r.twolevel {
            println!("  L2: allocs={} releases={} held={} avg_tenure={:.0} rej_dod={} rej_busy={} pred_hits={} pred_cold={} pred_acc={:.2}",
                tl.allocations, tl.releases, tl.held_cycles,
                tl.held_cycles as f64 / tl.allocations.max(1) as f64,
                tl.rejected_dod, tl.rejected_busy, tl.pred_hits, tl.pred_cold, tl.prediction_accuracy());
        }
    }
}
