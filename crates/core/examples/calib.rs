//! Quick calibration sweep: FT per mix under a handful of ROB
//! configurations at a caller-chosen budget (dev tool, not a figure).
use smtsim_rob2::*;

fn main() {
    let mixes: Vec<usize> = std::env::args()
        .nth(1)
        .map(|s| s.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or(vec![1, 5, 9, 10]);
    let budget: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let mut lab = Lab::new(42).with_budgets(budget, budget);
    // Dev-tool toggle, deliberately outside the BenchEnv funnel: the
    // bench crate sits above this one in the dependency graph.
    // xtask: allow-env-read
    if std::env::var("PRIVATE_REGS").is_ok() {
        lab.machine.shared_regs = false;
        eprintln!("(per-thread register partitions)");
    }
    let configs = [
        RobConfig::Baseline(32),
        RobConfig::Baseline(128),
        RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
        RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)),
        RobConfig::TwoLevel(TwoLevelConfig::cdr_rob(15)),
        RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)),
    ];
    let mut avgs = vec![0.0; configs.len()];
    for &m in &mixes {
        print!("Mix {m:>2}:");
        for (i, c) in configs.iter().enumerate() {
            let r = lab.run_mix(m, *c);
            avgs[i] += r.ft / mixes.len() as f64;
            print!("  {}={:.4}", short(&r.config), r.ft);
            if let Some(tl) = r.twolevel {
                print!("(a{})", tl.allocations);
            }
        }
        println!();
    }
    print!("AVG   :");
    for (i, c) in configs.iter().enumerate() {
        print!("  {}={:.4}", short(&c.label()), avgs[i]);
    }
    println!();
    for (i, c) in configs.iter().enumerate().skip(1) {
        println!(
            "{} vs Baseline_32: {:+.2}%",
            c.label(),
            (avgs[i] / avgs[0] - 1.0) * 100.0
        );
    }
}
fn short(s: &str) -> String {
    s.replace("2-Level ", "").replace("Baseline_", "B")
}
