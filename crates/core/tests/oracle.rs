//! End-to-end static-DoD-oracle cross-check: the `Lab` installs the
//! analysis pass's per-load bounds into every simulation, and the
//! pipeline compares its exact dependent count against them at each
//! correct-path L2 fill.
//!
//! Run with `--features dod-oracle` (CI does) to escalate any bound
//! violation into a `SimError::InvariantViolation` instead of a
//! statistic — either way these assertions require zero violations.

use smtsim_rob2::{Lab, RobConfig, TwoLevelConfig};

fn lab() -> Lab {
    Lab::new(23).with_budgets(10_000, 10_000)
}

#[test]
fn dynamic_dod_stays_within_static_bounds_across_schemes() {
    let mut lab = lab();
    for cfg in [
        RobConfig::Baseline(32),
        RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
        RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)),
    ] {
        for mix in [1, 2, 6] {
            let r = lab
                .try_run_mix(mix, cfg)
                .unwrap_or_else(|e| panic!("mix {mix} / {}: {e}", cfg.label()));
            let o = r.stats.dod_oracle;
            // Every static load has a bound, so every correct-path fill
            // the DoD histogram samples must also be cross-checked.
            assert_eq!(
                o.checked, r.stats.dod_at_fill.samples,
                "mix {mix} / {}: a sampled fill escaped the oracle",
                r.config
            );
            assert!(
                o.checked > 0,
                "mix {mix} / {}: oracle never fired — bounds not installed?",
                r.config
            );
            assert_eq!(
                o.violations, 0,
                "mix {mix} / {}: exact dependents exceeded the static bound",
                r.config
            );
            // Dependents of an unserviced load cannot have executed, so
            // the exact count is a subset of what the §4.1 counter
            // scans: the counter can only overcount, never undercount.
            assert!(
                o.counter_err_sum == 0 || o.counter_overshoot > 0,
                "mix {mix} / {}: counter error without overshoot means the \
                 counter undercounted, which the model forbids",
                r.config
            );
        }
    }
}

#[test]
fn single_threaded_normalization_runs_are_checked_too() {
    let mut lab = lab();
    let r = lab.run_mix(2, RobConfig::Baseline(32));
    // run_mix triggers the memoized single-threaded runs; the oracle
    // stats of the multithreaded run itself must be populated.
    assert!(r.stats.dod_oracle.checked > 0);
    assert_eq!(r.stats.dod_oracle.violations, 0);
}
