//! Property tests of the two-level ROB allocation state machine: for
//! arbitrary event sequences the allocator must preserve its structural
//! invariants (exclusive tenure, capacity consistency, balanced
//! allocate/release accounting, candidate hygiene).

use proptest::prelude::*;
use smtsim_isa::ThreadId;
use smtsim_pipeline::{MissEvent, RobAllocator, RobQuery};
use smtsim_rob2::{ReleasePolicy, Scheme, TwoLevelConfig, TwoLevelRob};

/// A scriptable machine state the allocator observes.
#[derive(Clone, Debug)]
struct World {
    occupancy: Vec<usize>,
    oldest: Vec<Option<u64>>,
    counts: Vec<u32>,
    in_flight: Vec<Vec<u64>>,
    pending: Vec<bool>,
}

impl World {
    fn new(threads: usize) -> Self {
        World {
            occupancy: vec![0; threads],
            oldest: vec![None; threads],
            counts: vec![0; threads],
            in_flight: vec![Vec::new(); threads],
            pending: vec![false; threads],
        }
    }
}

impl RobQuery for World {
    fn num_threads(&self) -> usize {
        self.occupancy.len()
    }
    fn occupancy(&self, t: ThreadId) -> usize {
        self.occupancy[t]
    }
    fn oldest_tag(&self, t: ThreadId) -> Option<u64> {
        self.oldest[t]
    }
    fn in_flight(&self, t: ThreadId, tag: u64) -> bool {
        self.in_flight[t].contains(&tag)
    }
    fn count_unexecuted_younger(&self, t: ThreadId, tag: u64, _w: usize) -> Option<u32> {
        self.in_flight(t, tag).then_some(self.counts[t])
    }
    fn has_pending_l2_miss(&self, t: ThreadId) -> bool {
        self.pending[t]
    }
}

/// One scripted event applied to the allocator.
#[derive(Clone, Debug)]
enum Action {
    Miss { t: usize, tag: u64, count: u32 },
    Fill { t: usize, tag: u64, dod: u32 },
    Squash { t: usize, from: u64 },
    Drain { t: usize },
    Refill { t: usize, occ: usize },
    Tick,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..4, 0u64..32, 0u32..32).prop_map(|(t, tag, count)| Action::Miss { t, tag, count }),
        (0usize..4, 0u64..32, 0u32..32).prop_map(|(t, tag, dod)| Action::Fill { t, tag, dod }),
        (0usize..4, 0u64..32).prop_map(|(t, from)| Action::Squash { t, from }),
        (0usize..4).prop_map(|t| Action::Drain { t }),
        (0usize..4, 1usize..400).prop_map(|(t, occ)| Action::Refill { t, occ }),
        Just(Action::Tick),
    ]
}

fn arb_config() -> impl Strategy<Value = TwoLevelConfig> {
    (
        prop::sample::select(vec![
            Scheme::Reactive {
                require_oldest: true,
                require_full: true,
            },
            Scheme::Reactive {
                require_oldest: true,
                require_full: false,
            },
            Scheme::CountDelayed { delay: 32 },
            Scheme::Predictive {
                predictor: smtsim_rob2::DodPredictorKind::LastValue,
            },
        ]),
        1u32..24,
        prop::sample::select(vec![
            ReleasePolicy::TriggerServiced,
            ReleasePolicy::DrainAndNoMiss,
            ReleasePolicy::DrainOnly,
        ]),
    )
        .prop_map(|(scheme, threshold, release)| {
            let mut c = TwoLevelConfig::r_rob(threshold);
            c.scheme = scheme;
            c.release = release;
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn allocator_invariants_under_arbitrary_events(
        cfg in arb_config(),
        actions in proptest::collection::vec(arb_action(), 1..120),
    ) {
        let mut a = TwoLevelRob::new(cfg);
        let mut w = World::new(4);
        let mut now = 0u64;
        for act in actions {
            match act {
                Action::Miss { t, tag, count } => {
                    if !w.in_flight[t].contains(&tag) {
                        w.in_flight[t].push(tag);
                    }
                    w.counts[t] = count;
                    w.oldest[t] = w.in_flight[t].iter().copied().min();
                    w.occupancy[t] = w.occupancy[t].max(32);
                    w.pending[t] = true;
                    a.on_l2_miss(&w, MissEvent {
                        thread: t,
                        tag,
                        pc: 0x1000 + tag * 4,
                        hist: 0,
                        wrong_path: false,
                    }, now);
                }
                Action::Fill { t, tag, dod } => {
                    w.in_flight[t].retain(|&x| x != tag);
                    w.oldest[t] = w.in_flight[t].iter().copied().min();
                    w.pending[t] = !w.in_flight[t].is_empty();
                    a.on_l2_fill(&w, MissEvent {
                        thread: t,
                        tag,
                        pc: 0x1000 + tag * 4,
                        hist: 0,
                        wrong_path: false,
                    }, dod, now);
                }
                Action::Squash { t, from } => {
                    w.in_flight[t].retain(|&x| x < from);
                    w.oldest[t] = w.in_flight[t].iter().copied().min();
                    w.pending[t] = !w.in_flight[t].is_empty();
                    a.on_squash(t, from, now);
                }
                Action::Drain { t } => {
                    w.occupancy[t] = 4;
                }
                Action::Refill { t, occ } => {
                    w.occupancy[t] = occ;
                }
                Action::Tick => {}
            }
            a.tick(&w, now);
            now += 3;

            // --- invariants ---
            let s = a.stats();
            // Balanced accounting: at most one live tenure.
            prop_assert!(s.releases <= s.allocations);
            prop_assert!(s.allocations <= s.releases + 1);
            prop_assert_eq!(a.owner().is_some(), s.allocations == s.releases + 1);
            // Capacity consistency: exactly the owner may see L1+L2,
            // and only while not draining; everyone else sees L1.
            let big = (0..4).filter(|&t| a.capacity(t) > 32).count();
            prop_assert!(big <= 1, "at most one extended thread");
            if let Some(o) = a.owner() {
                for t in 0..4 {
                    if t != o {
                        prop_assert_eq!(a.capacity(t), 32);
                    }
                }
            } else {
                prop_assert_eq!(big, 0);
            }
            // Held cycles can never exceed elapsed ticks.
            prop_assert!(s.held_cycles <= now / 3 + 1);
        }
    }

    #[test]
    fn capacity_is_pure(cfg in arb_config(), t in 0usize..4) {
        let a = TwoLevelRob::new(cfg);
        prop_assert_eq!(a.capacity(t), a.capacity(t));
        prop_assert_eq!(a.capacity(t), cfg.l1_entries);
        prop_assert_eq!(a.max_capacity(), cfg.l1_entries + cfg.l2_entries);
    }
}
