//! Behavioural pins for the allocation schemes and release policies on
//! real pipeline traffic (complementing the state-machine unit tests
//! and the paper-shape assertions).

use smtsim_rob2::{DodPredictorKind, Lab, ReleasePolicy, RobConfig, Scheme, TwoLevelConfig};

fn lab() -> Lab {
    let mut lab = Lab::new(42).with_budgets(15_000, 15_000);
    lab.warmup = 40_000;
    lab
}

#[test]
fn trigger_serviced_rotates_but_drain_and_no_miss_monopolizes() {
    // On a streaming memory mix (Mix 1) the holder under
    // DrainAndNoMiss almost always has another miss outstanding, so it
    // keeps the partition across episodes; TriggerServiced hands it
    // back after every serviced trigger, yielding many more rotations.
    let mut lab = lab();
    let mut rotated = TwoLevelConfig::relaxed_r_rob(15);
    rotated.release = ReleasePolicy::TriggerServiced;
    let mut sticky = rotated;
    sticky.release = ReleasePolicy::DrainAndNoMiss;

    let r_rot = lab.run_mix(1, RobConfig::TwoLevel(rotated));
    let r_sticky = lab.run_mix(1, RobConfig::TwoLevel(sticky));
    let tl_rot = r_rot.twolevel.unwrap();
    let tl_sticky = r_sticky.twolevel.unwrap();

    assert!(tl_rot.allocations > 0 && tl_sticky.allocations > 0);
    let tenure_rot = tl_rot.held_cycles as f64 / tl_rot.allocations as f64;
    let tenure_sticky = tl_sticky.held_cycles as f64 / tl_sticky.allocations.max(1) as f64;
    assert!(
        tenure_sticky > tenure_rot,
        "sticky tenures ({tenure_sticky:.0} cy) should exceed rotated ones ({tenure_rot:.0} cy)"
    );
}

#[test]
fn all_dod_predictor_kinds_allocate_on_memory_mixes() {
    let mut lab = lab();
    for kind in [
        DodPredictorKind::LastValue,
        DodPredictorKind::ThresholdBit,
        DodPredictorKind::Path,
    ] {
        let mut cfg = TwoLevelConfig::p_rob(5);
        cfg.scheme = Scheme::Predictive { predictor: kind };
        let r = lab.run_mix(1, RobConfig::TwoLevel(cfg));
        let tl = r.twolevel.unwrap();
        assert!(tl.allocations > 0, "{kind:?} never allocated");
        assert!(
            tl.pred_hits > 0,
            "{kind:?} never produced a prediction after training"
        );
        assert!(r.ft > 0.0);
    }
}

#[test]
fn predictive_allocates_earlier_than_strict_reactive() {
    // P-ROB decides at miss detection; R-ROB waits for oldest+full.
    // Earlier allocation ⇒ longer average tenure per allocation.
    let mut lab = lab();
    let r_reactive = lab.run_mix(4, RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)));
    let r_pred = lab.run_mix(4, RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)));
    let t_reactive = {
        let tl = r_reactive.twolevel.unwrap();
        tl.held_cycles as f64 / tl.allocations.max(1) as f64
    };
    let t_pred = {
        let tl = r_pred.twolevel.unwrap();
        tl.held_cycles as f64 / tl.allocations.max(1) as f64
    };
    assert!(
        t_pred > t_reactive,
        "predictive tenures ({t_pred:.0} cy) should exceed strict-reactive ones ({t_reactive:.0} cy)"
    );
}

#[test]
fn smaller_second_level_still_helps() {
    // The physical realization may donate only parts of private ROBs;
    // a 96-entry second level must still engage and not regress.
    let mut lab = lab();
    let base = lab.run_mix(1, RobConfig::Baseline(32));
    let mut cfg = TwoLevelConfig::r_rob(16);
    cfg.l2_entries = 96;
    let small = lab.run_mix(1, RobConfig::TwoLevel(cfg));
    assert!(small.twolevel.unwrap().allocations > 0);
    assert!(
        small.ft > base.ft * 0.98,
        "96-entry L2 ({:.4}) must not regress the baseline ({:.4})",
        small.ft,
        base.ft
    );
}

#[test]
fn dense_shadow_loads_are_rejected_by_the_threshold() {
    // The discrimination mechanism itself: on a chase-heavy mix the
    // counter must reject a meaningful share of candidates.
    let mut lab = lab();
    let r = lab.run_mix(9, RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)));
    let tl = r.twolevel.unwrap();
    assert!(
        tl.rejected_dod > 0,
        "chase-heavy mixes must trip the DoD threshold"
    );
}

#[test]
fn level2_stats_internally_consistent_on_real_traffic() {
    let mut lab = lab();
    for cfg in [
        TwoLevelConfig::r_rob(16),
        TwoLevelConfig::cdr_rob(15),
        TwoLevelConfig::p_rob(5),
    ] {
        let r = lab.run_mix(2, RobConfig::TwoLevel(cfg));
        let tl = r.twolevel.unwrap();
        assert!(tl.releases <= tl.allocations);
        assert!(tl.allocations <= tl.releases + 1);
        assert!(tl.held_cycles <= r.stats.cycles);
        assert!(tl.pred_correct <= tl.pred_verified);
    }
}
