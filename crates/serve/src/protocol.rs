//! The serve wire protocol: line-delimited JSON over a Unix socket.
//!
//! One request per connection. The client sends a single JSON object
//! on one line, then keeps the connection open and reads JSON lines
//! until the terminal line for its request kind arrives:
//!
//! ```text
//! → {"op":"submit","spec":"fig2"}            # registry id under the spec dir
//! → {"op":"submit","spec_toml":"..."}        # inline spec TOML body
//! ← {"type":"accepted","request":3,"cells":12,"universe":"<fnv64>"}
//! ← {"type":"cell","index":0,"mix":1,"config":"Baseline_32","key":"1|…",
//!    "cached":false,"attempts":1,"status":"ok","run":{…}}
//! ← …one cell line per matrix cell, completion order…
//! ← {"type":"done","request":3,"cells":12,"cache_hits":4,"cache_misses":8,
//!    "failed":0,"cancelled":0,"figure":"…rendered figure text…"}
//!
//! → {"op":"metrics"}
//! ← {"type":"metrics","counters":{…},"active_requests":1,"inflight_cells":4}
//!
//! → {"op":"ping"}
//! ← {"type":"pong"}
//!
//! → {"op":"shutdown"}
//! ← {"type":"draining"}   # then the daemon finishes admitted requests
//! ← {"type":"bye"}
//! ```
//!
//! Any failure is a typed single-line error and ends the exchange:
//!
//! ```text
//! ← {"type":"error","kind":"queue-full","retryable":true,"reason":"…"}
//! ```
//!
//! `retryable:true` (kinds `queue-full`, `shutting-down`) means the
//! request was well-formed and may simply be resubmitted later; every
//! other kind is a client or cache defect. Clients must keep their
//! write half open until the terminal line: the daemon treats EOF on
//! the connection as *cancel this request*.
//!
//! Submitted specs must be `kind = "figure"` — the matrix-shaped unit
//! the cache is keyed for. Composite kinds (suites, tables) are
//! client-side iterations over figure submissions.

use smtsim_rob2::journal::json_string;

/// Maximum accepted request-line length, a hygiene bound so a
/// misbehaving client cannot grow the daemon's read buffer without
/// limit (inline spec TOML fits comfortably).
pub const MAX_REQUEST_LINE: usize = 1 << 20;

/// Where a submitted spec's TOML comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecSource {
    /// A committed experiment id, resolved to `<spec_dir>/<id>.toml`.
    Registry(String),
    /// An inline TOML body shipped in the request itself.
    Inline(String),
}

/// One parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Run a figure spec and stream its cells back.
    Submit(SpecSource),
    /// Report cache/scheduler counters.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Drain admitted requests, then stop the daemon.
    Shutdown,
}

/// Parses one request line. Errors are human-readable reasons destined
/// for an `invalid-request` error line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    if line.len() > MAX_REQUEST_LINE {
        return Err(format!("request line exceeds {MAX_REQUEST_LINE} bytes"));
    }
    let v = smtsim_rob2::journal::parse_json(line.trim())
        .map_err(|e| format!("unparseable request JSON: {e}"))?;
    let op = v
        .get("op")
        .and_then(smtsim_rob2::journal::Json::as_str)
        .ok_or_else(|| "request lacks an \"op\" string field".to_string())?;
    match op {
        "submit" => {
            let spec = v.get("spec").and_then(smtsim_rob2::journal::Json::as_str);
            let toml = v
                .get("spec_toml")
                .and_then(smtsim_rob2::journal::Json::as_str);
            match (spec, toml) {
                (Some(id), None) => {
                    if id.is_empty()
                        || !id
                            .chars()
                            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                    {
                        return Err(format!("spec id {id:?} is not a plain registry name"));
                    }
                    Ok(Request::Submit(SpecSource::Registry(id.to_string())))
                }
                (None, Some(body)) => Ok(Request::Submit(SpecSource::Inline(body.to_string()))),
                (Some(_), Some(_)) => Err("submit carries both \"spec\" and \"spec_toml\"".into()),
                (None, None) => Err("submit needs a \"spec\" id or a \"spec_toml\" body".into()),
            }
        }
        "metrics" => Ok(Request::Metrics),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Typed error kinds an exchange can end with.
pub mod error_kind {
    /// The admission queue is at its bound; resubmit later.
    pub const QUEUE_FULL: &str = "queue-full";
    /// The daemon is draining for shutdown; resubmit to a new daemon.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// The request line itself was malformed.
    pub const INVALID_REQUEST: &str = "invalid-request";
    /// The spec failed to parse, validate or lower.
    pub const INVALID_CONFIG: &str = "invalid-config";
    /// The spec kind is not servable (only figures are).
    pub const UNSUPPORTED_KIND: &str = "unsupported-kind";
    /// The cache shard for this universe is damaged.
    pub const JOURNAL_CORRUPT: &str = "journal-corrupt";
    /// The cache shard could not be read or written.
    pub const CACHE_IO: &str = "cache-io";

    /// Whether `kind` invites a plain resubmission.
    pub fn retryable(kind: &str) -> bool {
        matches!(kind, QUEUE_FULL | SHUTTING_DOWN)
    }
}

/// Renders an `error` line (no trailing newline).
pub fn error_line(kind: &str, reason: &str) -> String {
    format!(
        "{{\"type\":\"error\",\"kind\":{},\"retryable\":{},\"reason\":{}}}",
        json_string(kind),
        error_kind::retryable(kind),
        json_string(reason)
    )
}

/// Renders an `accepted` line.
pub fn accepted_line(request: u64, cells: usize, universe: &str) -> String {
    format!(
        "{{\"type\":\"accepted\",\"request\":{request},\"cells\":{cells},\"universe\":{}}}",
        json_string(universe)
    )
}

/// How one streamed cell resolved.
#[derive(Clone, Debug)]
pub enum CellStatus {
    /// Completed; carries the canonical run JSON.
    Ok {
        /// `journal::mix_run_to_json` output for the cell's run.
        run_json: String,
    },
    /// Failed after its retry budget; carries the error display text.
    Failed {
        /// The `SimError` rendered for humans.
        error: String,
    },
    /// Cancelled before (or while) running.
    Cancelled,
}

/// Renders one `cell` line.
pub fn cell_line(
    index: usize,
    mix: usize,
    config: &str,
    key: &str,
    cached: bool,
    attempts: u32,
    status: &CellStatus,
) -> String {
    let head = format!(
        "{{\"type\":\"cell\",\"index\":{index},\"mix\":{mix},\"config\":{},\"key\":{},\"cached\":{cached},\"attempts\":{attempts}",
        json_string(config),
        json_string(key)
    );
    match status {
        CellStatus::Ok { run_json } => {
            format!("{head},\"status\":\"ok\",\"run\":{run_json}}}")
        }
        CellStatus::Failed { error } => {
            format!(
                "{head},\"status\":\"failed\",\"error\":{}}}",
                json_string(error)
            )
        }
        CellStatus::Cancelled => format!("{head},\"status\":\"cancelled\"}}"),
    }
}

/// Per-request completion tallies carried on the `done` line.
#[derive(Clone, Copy, Debug, Default)]
pub struct DoneStats {
    /// Cells served from the persistent cache.
    pub cache_hits: usize,
    /// Cells computed fresh (and appended to the cache when `Ok`).
    pub cache_misses: usize,
    /// Cells that exhausted their retry budget.
    pub failed: usize,
    /// Cells cancelled by client disconnect or shutdown.
    pub cancelled: usize,
}

/// Renders the terminal `done` line for a completed request.
pub fn done_line(request: u64, cells: usize, stats: &DoneStats, figure: &str) -> String {
    format!(
        "{{\"type\":\"done\",\"request\":{request},\"cells\":{cells},\"cache_hits\":{},\"cache_misses\":{},\"failed\":{},\"cancelled\":{},\"figure\":{}}}",
        stats.cache_hits,
        stats.cache_misses,
        stats.failed,
        stats.cancelled,
        json_string(figure)
    )
}

/// Renders the `metrics` line from sorted counter pairs.
pub fn metrics_line(
    counters: &[(String, u64)],
    active_requests: usize,
    inflight_cells: usize,
) -> String {
    let body: Vec<String> = counters
        .iter()
        .map(|(k, v)| format!("{}:{v}", json_string(k)))
        .collect();
    format!(
        "{{\"type\":\"metrics\",\"counters\":{{{}}},\"active_requests\":{active_requests},\"inflight_cells\":{inflight_cells}}}",
        body.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_rob2::journal::parse_json;

    #[test]
    fn submit_forms_parse() {
        assert_eq!(
            parse_request("{\"op\":\"submit\",\"spec\":\"fig2\"}").unwrap(),
            Request::Submit(SpecSource::Registry("fig2".into()))
        );
        assert_eq!(
            parse_request("{\"op\":\"submit\",\"spec_toml\":\"[experiment]\\nid=1\"}").unwrap(),
            Request::Submit(SpecSource::Inline("[experiment]\nid=1".into()))
        );
        assert_eq!(parse_request("{\"op\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(
            parse_request(" {\"op\":\"metrics\"} \n").unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"spec\":\"fig2\"}")
            .unwrap_err()
            .contains("op"));
        assert!(parse_request("{\"op\":\"submit\"}")
            .unwrap_err()
            .contains("spec"));
        assert!(parse_request("{\"op\":\"submit\",\"spec\":\"a\",\"spec_toml\":\"b\"}").is_err());
        // Path traversal cannot smuggle through a registry id.
        assert!(parse_request("{\"op\":\"submit\",\"spec\":\"../etc/passwd\"}").is_err());
        assert!(parse_request("{\"op\":\"submit\",\"spec\":\"\"}").is_err());
        assert!(parse_request("{\"op\":\"explode\"}").is_err());
    }

    #[test]
    fn response_lines_are_valid_json() {
        for line in [
            error_line(error_kind::QUEUE_FULL, "8 requests admitted"),
            accepted_line(7, 12, "deadbeef"),
            cell_line(
                0,
                1,
                "Baseline_32",
                "1|abc",
                true,
                1,
                &CellStatus::Ok {
                    run_json: "{\"mix\":\"Mix 1\"}".into(),
                },
            ),
            cell_line(
                1,
                2,
                "TwoLevel",
                "2|abc",
                false,
                3,
                &CellStatus::Failed {
                    error: "cell timeout: \"budget\"".into(),
                },
            ),
            cell_line(2, 9, "TwoLevel", "9|abc", false, 0, &CellStatus::Cancelled),
            done_line(
                7,
                12,
                &DoneStats {
                    cache_hits: 4,
                    cache_misses: 8,
                    failed: 0,
                    cancelled: 0,
                },
                "Figure 2\nline\t1",
            ),
            metrics_line(&[("serve.cache_hits".into(), 4)], 1, 2),
        ] {
            let v = parse_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert!(v.get("type").is_some(), "{line}");
        }
    }

    #[test]
    fn retryable_marking_matches_kind_policy() {
        let retry = error_line(error_kind::SHUTTING_DOWN, "draining");
        assert!(retry.contains("\"retryable\":true"), "{retry}");
        let fatal = error_line(error_kind::JOURNAL_CORRUPT, "crc mismatch");
        assert!(fatal.contains("\"retryable\":false"), "{fatal}");
    }
}
