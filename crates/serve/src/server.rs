//! The daemon: socket accept loop, request admission, the fair
//! work-stealing cell scheduler and the per-request streaming state
//! machine. Protocol shapes live in [`crate::protocol`], persistence
//! in [`crate::cache`].
//!
//! Threading model:
//!
//! * **accept loop** (1 thread) — accepts connections and hands each
//!   to its own connection thread; never blocks on request work, so a
//!   full admission queue still answers `queue-full` immediately.
//! * **connection threads** (1 per live client) — parse the request,
//!   run admission + spec lowering + the *serial* phase-1
//!   normalization (warm-started from the cache), enqueue the
//!   request's cells, then stream completions back in completion
//!   order and finish with the rendered figure.
//! * **worker pool** (N threads) — pull one cell at a time, round-
//!   robin across admitted requests (fair multi-client progress).
//!   Cache hits resolve under the scheduler lock; misses run the cell
//!   through [`Lab::run_cell_with_retries`] outside any lock — full
//!   watchdog/panic-isolation/retry semantics — and append to the
//!   shard journal. A cell another request is *already computing* is
//!   deferred (single-flight) and re-armed as a cache hit when the
//!   computation lands.
//!
//! Lock order is `sched` before `metrics`; journal internals are leaf
//! locks. Cancellation is cooperative end to end: client EOF trips the
//! request's [`CancelToken`], queued cells resolve as `cancelled`
//! immediately and a running cell aborts at the next watchdog poll.

use crate::cache::{universe_of, ResultCache};
use crate::protocol::{self, error_kind, CellStatus, DoneStats, Request, SpecSource};
use smtsim_obs::MetricsRegistry;
use smtsim_pipeline::{CancelToken, SimError};
use smtsim_rob2::journal::{cell_key, mix_run_to_json};
use smtsim_rob2::{figures, report, ExperimentSpec, Journal, JournalError, Lab, NormTable};
use smtsim_rob2::{RobConfig, SpecKind, ALL_MIXES};
use std::collections::{BTreeSet, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};

/// Poison-tolerant lock: a panicking holder must not cascade into
/// every other daemon thread (the data is counters and queues whose
/// invariants the scheduler re-checks on every pop).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Daemon configuration — a typed struct, not environment variables:
/// the bench layer owns the env funnel and builds one of these.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Unix socket path to listen on (a stale file is replaced).
    pub socket: PathBuf,
    /// Persistent cache directory (created if missing).
    pub cache_dir: PathBuf,
    /// Admission bound: maximum concurrently admitted requests; the
    /// next submission is rejected `queue-full` (retryable).
    pub queue_limit: usize,
    /// Worker threads for the cell pool; `0` = available parallelism.
    pub workers: usize,
    /// Directory for `{"spec":"<id>"}` registry submissions; `None`
    /// accepts inline `spec_toml` only.
    pub spec_dir: Option<PathBuf>,
}

impl ServeConfig {
    /// The effective worker-pool size.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// Strategy turning a parsed figure spec into the lab (and mix list)
/// its cells run under. The bench layer implements this over
/// `BenchEnv::with_spec` + `lab_for_spec`, which is what makes served
/// bytes identical to the offline `spec` bin; [`PlainLowering`] is a
/// minimal env-free implementation for embedding and tests. Errors are
/// human-readable reasons, answered as `invalid-config`.
pub trait SpecLowering: Send + Sync {
    /// Lowers `spec` to a ready lab plus the mix indices to sweep.
    fn lower(&self, spec: &ExperimentSpec) -> Result<(Lab, Vec<usize>), String>;
}

/// Environment-free [`SpecLowering`]: machine, normalization reference
/// and mix list straight from the spec; budgets/warm-up/seed from the
/// spec's knobs, falling back to the fields here.
#[derive(Clone, Debug)]
pub struct PlainLowering {
    /// Fallback multithreaded + single-threaded commit budget.
    pub budget: u64,
    /// Fallback warm-up instructions.
    pub warmup: u64,
    /// Fallback workload seed.
    pub seed: u64,
}

impl Default for PlainLowering {
    fn default() -> Self {
        PlainLowering {
            budget: 60_000,
            warmup: 60_000,
            seed: 42,
        }
    }
}

impl SpecLowering for PlainLowering {
    fn lower(&self, spec: &ExperimentSpec) -> Result<(Lab, Vec<usize>), String> {
        let knobs = spec.knobs();
        let mt = knobs.budget.unwrap_or(self.budget);
        let mut lab = Lab::new(knobs.seed.unwrap_or(self.seed))
            .with_budgets(mt, knobs.st_budget.unwrap_or(mt))
            .with_warmup(knobs.warmup.unwrap_or(self.warmup));
        lab.machine = spec.machine.clone();
        lab.norm = spec.norm;
        let mixes = spec.mixes.clone().unwrap_or_else(|| ALL_MIXES.to_vec());
        Ok((lab, mixes))
    }
}

/// One cell of an admitted request's matrix.
struct CellJob {
    mix: usize,
    config: RobConfig,
    /// Series label (client display; the journal key is value-based).
    label: String,
    /// Content-addressed cache key: `mix|config-fingerprint`.
    key: String,
}

/// What a worker (or the cancel path) reports back to the request's
/// connection thread.
enum CellMsg {
    Done {
        idx: usize,
        cached: bool,
        attempts: u32,
        result: Box<Result<smtsim_rob2::MixRun, SimError>>,
    },
    Cancelled {
        idx: usize,
    },
}

/// Immutable per-request execution state, shared between the
/// connection thread, the scheduler and the workers.
struct RequestRun {
    id: u64,
    lab: Lab,
    norm: NormTable,
    journal: Arc<Journal>,
    universe: String,
    cells: Vec<CellJob>,
    cancel: CancelToken,
    tx: mpsc::Sender<CellMsg>,
}

/// A request's position in the scheduler: cells not yet claimed.
struct Entry {
    req: Arc<RequestRun>,
    /// Cells ready to claim, in matrix order.
    pending: VecDeque<usize>,
    /// Cells whose key is being computed by another request right now
    /// (single-flight); re-armed into `pending` on any completion.
    deferred: Vec<usize>,
}

/// Scheduler state under one lock.
struct Sched {
    /// Entries with claimable cells, round-robin order.
    queue: VecDeque<Entry>,
    /// Entries whose remaining cells are all deferred.
    parked: Vec<Entry>,
    /// `(universe, key)` pairs being computed right now.
    inflight: BTreeSet<(String, String)>,
    /// Cells currently executing in workers.
    running: usize,
    /// Admitted (accepted, not yet finished) submit requests.
    admitted: usize,
    /// Set once drain completes: workers exit instead of sleeping.
    stop_workers: bool,
}

struct Shared {
    config: ServeConfig,
    lowering: Box<dyn SpecLowering>,
    cache: ResultCache,
    metrics: Mutex<MetricsRegistry>,
    sched: Mutex<Sched>,
    /// Wakes workers when cells become claimable (or on stop).
    work_cv: Condvar,
    /// Wakes drain waiters when `admitted` drops.
    drain_cv: Condvar,
    /// Set while draining: new submissions answer `shutting-down`.
    shutdown: AtomicBool,
    /// Set when the accept loop must exit on its next wake-up.
    stopped: AtomicBool,
    next_request: AtomicU64,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn bump(&self, key: &str) {
        lock(&self.metrics).bump(key);
    }

    fn bump_by(&self, key: &str, n: u64) {
        lock(&self.metrics).bump_by(key, n);
    }
}

/// A running daemon. Dropping the handle does *not* stop the daemon —
/// call [`Server::shutdown`] (programmatic) or send the protocol
/// `shutdown` op and then [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the socket, opens the cache directory and starts the
    /// accept loop plus worker pool.
    pub fn start(config: ServeConfig, lowering: Box<dyn SpecLowering>) -> std::io::Result<Server> {
        let cache = ResultCache::open(&config.cache_dir)?;
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)?;
        }
        let listener = UnixListener::bind(&config.socket)?;
        let workers_n = config.effective_workers();
        let shared = Arc::new(Shared {
            config,
            lowering,
            cache,
            metrics: Mutex::new(MetricsRegistry::new()),
            sched: Mutex::new(Sched {
                queue: VecDeque::new(),
                parked: Vec::new(),
                inflight: BTreeSet::new(),
                running: 0,
                admitted: 0,
                stop_workers: false,
            }),
            work_cv: Condvar::new(),
            drain_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            next_request: AtomicU64::new(1),
            conns: Mutex::new(Vec::new()),
        });
        let workers = (0..workers_n)
            .map(|_| {
                let sh = shared.clone();
                thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        let sh = shared.clone();
        let accept = thread::spawn(move || accept_loop(&sh, &listener));
        Ok(Server {
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The socket the daemon listens on.
    #[must_use]
    pub fn socket(&self) -> PathBuf {
        self.shared.config.socket.clone()
    }

    /// A metrics counter, for in-process embedders and tests.
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        lock(&self.shared.metrics).counter(key)
    }

    /// Drops the open cache shard handle for `universe` so the next
    /// request re-reads the file from disk (recovery-test hook).
    pub fn evict_shard(&self, universe: &str) {
        self.shared.cache.evict_shard(universe);
    }

    /// Blocks until a protocol `shutdown` has drained the daemon, then
    /// joins every thread and removes the socket file.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.join_rest();
    }

    /// Programmatic graceful shutdown: stop admitting, finish every
    /// admitted request, stop the pool and the accept loop, join all
    /// threads, remove the socket file.
    pub fn shutdown(mut self) {
        drain(&self.shared);
        stop(&self.shared);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.join_rest();
    }

    fn join_rest(&mut self) {
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *lock(&self.shared.conns));
        for h in conns {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.shared.config.socket);
    }
}

/// Blocks until every admitted request has finished. Entered with
/// [`Shared::shutdown`] already (or herewith) set so no new request
/// can be admitted behind the wait.
fn drain(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let mut sched = lock(&shared.sched);
    while sched.admitted > 0 {
        sched = shared
            .drain_cv
            .wait(sched)
            .unwrap_or_else(|e| e.into_inner());
    }
}

/// Stops the worker pool and kicks the accept loop awake so it can
/// observe [`Shared::stopped`].
fn stop(shared: &Shared) {
    {
        let mut sched = lock(&shared.sched);
        sched.stop_workers = true;
    }
    shared.work_cv.notify_all();
    shared.stopped.store(true, Ordering::SeqCst);
    let _ = UnixStream::connect(&shared.config.socket);
}

fn accept_loop(shared: &Arc<Shared>, listener: &UnixListener) {
    for stream in listener.incoming() {
        if shared.stopped.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let sh = shared.clone();
        let handle = thread::spawn(move || handle_connection(&sh, stream));
        lock(&shared.conns).push(handle);
    }
}

/// Writes one response line; returns false when the client is gone.
fn send_line(stream: &mut UnixStream, line: &str) -> bool {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .is_ok()
}

fn handle_connection(shared: &Arc<Shared>, mut stream: UnixStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    if reader.read_line(&mut line).unwrap_or(0) == 0 {
        return;
    }
    let request = match protocol::parse_request(&line) {
        Ok(r) => r,
        Err(reason) => {
            send_line(
                &mut stream,
                &protocol::error_line(error_kind::INVALID_REQUEST, &reason),
            );
            return;
        }
    };
    match request {
        Request::Ping => {
            send_line(&mut stream, "{\"type\":\"pong\"}");
        }
        Request::Metrics => {
            let (active, running) = {
                let sched = lock(&shared.sched);
                (sched.admitted, sched.running)
            };
            let counters: Vec<(String, u64)> = lock(&shared.metrics)
                .counters()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            send_line(
                &mut stream,
                &protocol::metrics_line(&counters, active, running),
            );
        }
        Request::Shutdown => {
            send_line(&mut stream, "{\"type\":\"draining\"}");
            drain(shared);
            stop(shared);
            send_line(&mut stream, "{\"type\":\"bye\"}");
        }
        Request::Submit(source) => handle_submit(shared, stream, &source),
    }
}

/// A submit rejection: protocol error kind + reason.
struct Reject {
    kind: &'static str,
    reason: String,
}

fn handle_submit(shared: &Arc<Shared>, mut stream: UnixStream, source: &SpecSource) {
    if shared.shutdown.load(Ordering::SeqCst) {
        send_line(
            &mut stream,
            &protocol::error_line(error_kind::SHUTTING_DOWN, "daemon is draining"),
        );
        return;
    }
    // Admission — the *only* gate a new request can block other
    // clients on, and it is a constant-time counter check.
    {
        let mut sched = lock(&shared.sched);
        if sched.admitted >= shared.config.queue_limit {
            drop(sched);
            shared.bump("serve.queue_rejections");
            send_line(
                &mut stream,
                &protocol::error_line(
                    error_kind::QUEUE_FULL,
                    &format!(
                        "{} request(s) admitted (limit {})",
                        shared.config.queue_limit, shared.config.queue_limit
                    ),
                ),
            );
            return;
        }
        sched.admitted += 1;
    }
    // From here on every path must release the admission slot.
    run_admitted(shared, &mut stream, source);
    {
        let mut sched = lock(&shared.sched);
        sched.admitted -= 1;
    }
    shared.drain_cv.notify_all();
}

/// The admitted-request body: resolve → lower → normalize → enqueue →
/// stream → render. Any early error is answered as a typed line.
fn run_admitted(shared: &Arc<Shared>, stream: &mut UnixStream, source: &SpecSource) {
    let spec = match resolve_spec(shared, source) {
        Ok(s) => s,
        Err(r) => {
            send_line(stream, &protocol::error_line(r.kind, &r.reason));
            return;
        }
    };
    let (tx, rx) = mpsc::channel();
    let req = match prepare_request(shared, &spec, tx) {
        Ok(p) => p,
        Err(r) => {
            send_line(stream, &protocol::error_line(r.kind, &r.reason));
            return;
        }
    };
    let id = req.id;
    shared.bump("serve.requests");
    if !send_line(
        stream,
        &protocol::accepted_line(id, req.cells.len(), &req.universe),
    ) {
        // Client vanished before the stream even started.
        return;
    }

    let cells_n = req.cells.len();
    enqueue(shared, &req);
    spawn_disconnect_watch(shared, stream, &req);

    // Stream completions. Exactly one message arrives per cell, from
    // either a worker or the cancellation path.
    let mut stats = DoneStats::default();
    let mut client_gone = false;
    for _ in 0..cells_n {
        let Ok(msg) = rx.recv() else {
            break;
        };
        let line = match msg {
            CellMsg::Cancelled { idx } => {
                stats.cancelled += 1;
                let c = &req.cells[idx];
                protocol::cell_line(
                    idx,
                    c.mix,
                    &c.label,
                    &c.key,
                    false,
                    0,
                    &CellStatus::Cancelled,
                )
            }
            CellMsg::Done {
                idx,
                cached,
                attempts,
                result,
            } => {
                if cached {
                    stats.cache_hits += 1;
                } else {
                    stats.cache_misses += 1;
                }
                let status = match &*result {
                    Ok(run) => CellStatus::Ok {
                        run_json: mix_run_to_json(run),
                    },
                    Err(e) => {
                        stats.failed += 1;
                        CellStatus::Failed {
                            error: e.to_string(),
                        }
                    }
                };
                let c = &req.cells[idx];
                protocol::cell_line(idx, c.mix, &c.label, &c.key, cached, attempts, &status)
            }
        };
        if !client_gone && !send_line(stream, &line) {
            // Broken pipe: cancel the rest, but keep draining our
            // channel so the per-cell accounting stays complete.
            client_gone = true;
            req.cancel.cancel();
            cancel_request(shared, id);
        }
    }

    if client_gone || req.cancel.is_cancelled() {
        shared.bump("serve.requests_cancelled");
        return;
    }
    // Terminal line: the figure rendered exactly as the offline spec
    // bin renders it, from a fresh journal-armed lab whose every cell
    // is now a cache hit.
    match render_figure(shared, &spec, &req) {
        Ok(figure) => {
            send_line(stream, &protocol::done_line(id, cells_n, &stats, &figure));
            shared.bump("serve.requests_completed");
        }
        Err(r) => {
            send_line(stream, &protocol::error_line(r.kind, &r.reason));
        }
    }
    // Release the disconnect watcher's read so read-to-EOF clients see
    // the stream end right after the terminal line (the watcher holds
    // a duplicate of this socket that would otherwise stay open until
    // the client hangs up first).
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Resolves the submitted spec source to a parsed, figure-kind spec.
fn resolve_spec(shared: &Shared, source: &SpecSource) -> Result<ExperimentSpec, Reject> {
    let spec = match source {
        SpecSource::Registry(id) => {
            let Some(dir) = shared.config.spec_dir.as_ref() else {
                return Err(Reject {
                    kind: error_kind::INVALID_CONFIG,
                    reason: "daemon has no spec registry; submit spec_toml instead".into(),
                });
            };
            ExperimentSpec::load(&dir.join(format!("{id}.toml"))).map_err(|e| Reject {
                kind: error_kind::INVALID_CONFIG,
                reason: e.to_string(),
            })?
        }
        SpecSource::Inline(body) => {
            ExperimentSpec::parse("<request>", body).map_err(|e| Reject {
                kind: error_kind::INVALID_CONFIG,
                reason: e.to_string(),
            })?
        }
    };
    if spec.kind != SpecKind::Figure {
        return Err(Reject {
            kind: error_kind::UNSUPPORTED_KIND,
            reason: format!(
                "spec {} has kind {:?}; only figure specs are servable",
                spec.id, spec.kind
            ),
        });
    }
    Ok(spec)
}

/// Lowers the spec, computes the cache universe, opens the shard and
/// runs the warm-started serial phase-1 normalization. `tx` is the
/// completion channel the connection thread keeps the receiver of.
fn prepare_request(
    shared: &Shared,
    spec: &ExperimentSpec,
    tx: mpsc::Sender<CellMsg>,
) -> Result<Arc<RequestRun>, Reject> {
    let (lab, mixes) = shared.lowering.lower(spec).map_err(|reason| Reject {
        kind: error_kind::INVALID_CONFIG,
        reason,
    })?;
    let cancel = CancelToken::new();
    let mut lab = lab.with_cancel_token(Some(cancel.clone()));
    // Content addressing: identity is the lowered lab state, not the
    // spec file (see cache module docs), and the daemon owns the
    // journal — any env-armed path is irrelevant here.
    lab.spec_fingerprint = None;
    lab.journal_path = None;
    let universe = universe_of(&mut lab);
    let journal = shared.cache.shard(&universe).map_err(|e| Reject {
        kind: match e {
            JournalError::Corrupt { .. } => error_kind::JOURNAL_CORRUPT,
            _ => error_kind::CACHE_IO,
        },
        reason: e.to_string(),
    })?;
    // Phase 1, serial, warm-started from this universe's earlier
    // requests; the freshly measured entries are folded back in.
    shared.cache.seed_lab(&universe, &mut lab);
    let norm = lab.norm_table(&mixes);
    shared.cache.store_norm(&universe, &norm);
    // The cell matrix in the engine's canonical config-major order.
    let mut cells = Vec::with_capacity(spec.variants.len() * mixes.len());
    for v in &spec.variants {
        for &m in &mixes {
            cells.push(CellJob {
                mix: m,
                config: v.config,
                label: v.label.clone(),
                key: cell_key(m, &v.config.fingerprint()),
            });
        }
    }
    Ok(Arc::new(RequestRun {
        id: shared.next_request.fetch_add(1, Ordering::SeqCst),
        lab,
        norm,
        journal,
        universe,
        cells,
        cancel,
        tx,
    }))
}

/// Queues the request's cells for the worker pool.
fn enqueue(shared: &Shared, req: &Arc<RequestRun>) {
    {
        let mut sched = lock(&shared.sched);
        sched.queue.push_back(Entry {
            req: req.clone(),
            pending: (0..req.cells.len()).collect(),
            deferred: Vec::new(),
        });
    }
    shared.work_cv.notify_all();
}

/// Watches the connection for client EOF while a request streams; EOF
/// cancels the request. The thread parks on a blocking read and exits
/// when the client (or the daemon, at process end) closes the socket.
fn spawn_disconnect_watch(shared: &Arc<Shared>, stream: &UnixStream, req: &Arc<RequestRun>) {
    let Ok(mut watch) = stream.try_clone() else {
        return;
    };
    let sh = shared.clone();
    let token = req.cancel.clone();
    let id = req.id;
    thread::spawn(move || {
        let mut buf = [0u8; 64];
        loop {
            match watch.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {} // Extra client bytes are ignored.
            }
        }
        token.cancel();
        cancel_request(&sh, id);
    });
}

/// Removes request `id` from the scheduler and resolves every not-yet
/// -claimed cell as cancelled. Idempotent; cells already claimed by a
/// worker resolve through the worker (which observes the token).
fn cancel_request(shared: &Shared, id: u64) {
    let mut sched = lock(&shared.sched);
    let mut found = Vec::new();
    if let Some(pos) = sched.queue.iter().position(|e| e.req.id == id) {
        found.push(sched.queue.remove(pos).expect("position just found"));
    }
    if let Some(pos) = sched.parked.iter().position(|e| e.req.id == id) {
        found.push(sched.parked.swap_remove(pos));
    }
    let mut cancelled = 0u64;
    for mut entry in found {
        for idx in entry.pending.drain(..).chain(entry.deferred.drain(..)) {
            let _ = entry.req.tx.send(CellMsg::Cancelled { idx });
            cancelled += 1;
        }
    }
    drop(sched);
    if cancelled > 0 {
        shared.bump_by("serve.cells_cancelled", cancelled);
    }
}

/// Requeues an entry after one cell was taken from it: back of the
/// round-robin queue while claimable cells remain, parked while only
/// deferred (inflight-elsewhere) cells remain, dropped when empty.
fn requeue(sched: &mut Sched, entry: Entry) {
    if !entry.pending.is_empty() {
        sched.queue.push_back(entry);
    } else if !entry.deferred.is_empty() {
        sched.parked.push(entry);
    }
}

/// Re-arms every parked entry: a computation just landed in some
/// journal, so deferred cells may now be cache hits. Entries whose
/// keys are still inflight simply re-defer on their next pop — cheap,
/// and it cannot starve: every completion re-arms the parked set.
fn unpark_all(sched: &mut Sched) {
    let parked = std::mem::take(&mut sched.parked);
    for mut entry in parked {
        entry.pending.extend(entry.deferred.drain(..));
        sched.queue.push_back(entry);
    }
}

fn worker_loop(shared: &Shared) {
    let mut sched = lock(&shared.sched);
    loop {
        if let Some(mut entry) = sched.queue.pop_front() {
            if entry.req.cancel.is_cancelled() {
                // Resolve the whole entry as cancelled in one sweep.
                let n = (entry.pending.len() + entry.deferred.len()) as u64;
                for idx in entry.pending.drain(..).chain(entry.deferred.drain(..)) {
                    let _ = entry.req.tx.send(CellMsg::Cancelled { idx });
                }
                drop(sched);
                if n > 0 {
                    shared.bump_by("serve.cells_cancelled", n);
                }
                sched = lock(&shared.sched);
                continue;
            }
            let idx = entry
                .pending
                .pop_front()
                .expect("queued entries have pending cells");
            let job = &entry.req.cells[idx];
            let flight_key = (entry.req.universe.clone(), job.key.clone());
            if let Some(hit) = entry.req.journal.lookup(&job.key) {
                // Cache hit: resolved under the lock (a map lookup).
                let _ = entry.req.tx.send(CellMsg::Done {
                    idx,
                    cached: true,
                    attempts: hit.attempts,
                    result: Box::new(Ok(hit.run)),
                });
                requeue(&mut sched, entry);
                drop(sched);
                shared.bump("serve.cache_hits");
                sched = lock(&shared.sched);
                continue;
            }
            if sched.inflight.contains(&flight_key) {
                // Another request is computing this exact cell:
                // single-flight defers ours until that lands.
                entry.deferred.push(idx);
                requeue(&mut sched, entry);
                drop(sched);
                shared.bump("serve.inflight_waits");
                sched = lock(&shared.sched);
                continue;
            }
            // Claim and compute outside the lock.
            sched.inflight.insert(flight_key.clone());
            sched.running += 1;
            let req = entry.req.clone();
            requeue(&mut sched, entry);
            drop(sched);

            let job = &req.cells[idx];
            let outcome = if req.cancel.is_cancelled() {
                None
            } else {
                Some(
                    req.lab
                        .run_cell_with_retries(job.mix, job.config, &req.norm),
                )
            };
            let mut append_failed = false;
            if let Some((Ok(run), attempts)) = &outcome {
                append_failed = req.journal.record(&job.key, run, *attempts).is_err();
            }

            sched = lock(&shared.sched);
            sched.inflight.remove(&flight_key);
            sched.running -= 1;
            unpark_all(&mut sched);
            drop(sched);
            match outcome {
                None => {
                    let _ = req.tx.send(CellMsg::Cancelled { idx });
                    shared.bump("serve.cells_cancelled");
                }
                Some((result, attempts)) => {
                    if req.cancel.is_cancelled() && result.is_err() {
                        // The watchdog aborted the run for the token;
                        // report it as the cancellation it is.
                        let _ = req.tx.send(CellMsg::Cancelled { idx });
                        shared.bump("serve.cells_cancelled");
                    } else {
                        shared.bump("serve.cache_misses");
                        shared.bump("serve.cells_run");
                        if result.is_err() {
                            shared.bump("serve.cells_failed");
                        }
                        let _ = req.tx.send(CellMsg::Done {
                            idx,
                            cached: false,
                            attempts,
                            result: Box::new(result),
                        });
                    }
                }
            }
            if append_failed {
                shared.bump("serve.journal_append_errors");
            }
            shared.work_cv.notify_all();
            sched = lock(&shared.sched);
            continue;
        }
        if sched.stop_workers {
            return;
        }
        sched = shared
            .work_cv
            .wait(sched)
            .unwrap_or_else(|e| e.into_inner());
    }
}

/// Renders the request's figure byte-for-byte as the offline
/// journal-armed `spec` bin would: a fresh lowered lab adopts the
/// shard journal (every cell now a hit) and runs the ordinary serial
/// figure sweep.
fn render_figure(
    shared: &Shared,
    spec: &ExperimentSpec,
    req: &RequestRun,
) -> Result<String, Reject> {
    let (lab, mixes) = shared.lowering.lower(spec).map_err(|reason| Reject {
        kind: error_kind::INVALID_CONFIG,
        reason,
    })?;
    let mut lab = lab.with_jobs(Some(1));
    lab.spec_fingerprint = None;
    lab.journal_path = None;
    lab.adopt_journal(req.journal.clone()).map_err(|e| Reject {
        kind: error_kind::CACHE_IO,
        reason: e.to_string(),
    })?;
    shared.cache.seed_lab(&req.universe, &mut lab);
    let title = spec.title.as_deref().unwrap_or(&spec.id);
    let pairs: Vec<(String, RobConfig)> = spec
        .variants
        .iter()
        .map(|v| (v.label.clone(), v.config))
        .collect();
    let fig = figures::ft_sweep(&mut lab, title, pairs, &mixes);
    Ok(report::render_figure(&fig))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("smtsim-serve-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config(dir: &Path) -> ServeConfig {
        ServeConfig {
            socket: dir.join("serve.sock"),
            cache_dir: dir.join("cache"),
            queue_limit: 2,
            workers: 2,
            spec_dir: None,
        }
    }

    fn lowering() -> Box<dyn SpecLowering> {
        Box::new(PlainLowering {
            budget: 2_000,
            warmup: 500,
            seed: 42,
        })
    }

    fn roundtrip(socket: &Path, request: &str) -> Vec<String> {
        let mut s = UnixStream::connect(socket).expect("daemon is listening");
        s.write_all(request.as_bytes()).unwrap();
        s.write_all(b"\n").unwrap();
        let mut lines = Vec::new();
        let reader = BufReader::new(s);
        for line in reader.lines() {
            match line {
                Ok(l) => lines.push(l),
                Err(_) => break,
            }
        }
        lines
    }

    const TINY_SPEC: &str = "[experiment]\n\
        id = \"tiny\"\n\
        title = \"Tiny\"\n\
        kind = \"figure\"\n\
        norm = \"baseline-32\"\n\
        schemes = [\"baseline-32\"]\n\
        mixes = [1]\n\
        [knobs]\n\
        budget = 2000\n\
        warmup = 500\n";

    #[test]
    fn ping_metrics_invalid_and_shutdown() {
        let dir = scratch_dir("basic");
        let server = Server::start(config(&dir), lowering()).expect("daemon starts");
        let socket = server.socket();
        assert_eq!(
            roundtrip(&socket, "{\"op\":\"ping\"}"),
            vec!["{\"type\":\"pong\"}".to_string()]
        );
        let metrics = roundtrip(&socket, "{\"op\":\"metrics\"}");
        assert_eq!(metrics.len(), 1);
        assert!(
            metrics[0].contains("\"active_requests\":0"),
            "{}",
            metrics[0]
        );
        let bad = roundtrip(&socket, "{\"op\":\"explode\"}");
        assert!(bad[0].contains("invalid-request"), "{}", bad[0]);
        let bye = roundtrip(&socket, "{\"op\":\"shutdown\"}");
        assert_eq!(bye.last().map(String::as_str), Some("{\"type\":\"bye\"}"));
        server.wait();
        assert!(!dir.join("serve.sock").exists(), "socket cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inline_submit_streams_cells_then_warm_resubmit_hits() {
        let dir = scratch_dir("submit");
        let server = Server::start(config(&dir), lowering()).expect("daemon starts");
        let socket = server.socket();
        let submit = format!(
            "{{\"op\":\"submit\",\"spec_toml\":{}}}",
            smtsim_rob2::journal::json_string(TINY_SPEC)
        );
        let cold = roundtrip(&socket, &submit);
        assert!(cold[0].contains("\"type\":\"accepted\""), "{}", cold[0]);
        assert!(cold[0].contains("\"cells\":1"), "{}", cold[0]);
        assert!(cold[1].contains("\"cached\":false"), "{}", cold[1]);
        let done_cold = cold.last().expect("done line");
        assert!(done_cold.contains("\"cache_misses\":1"), "{done_cold}");
        assert_eq!(server.counter("serve.cache_misses"), 1);

        let warm = roundtrip(&socket, &submit);
        assert!(warm[1].contains("\"cached\":true"), "{}", warm[1]);
        let done_warm = warm.last().expect("done line");
        assert!(done_warm.contains("\"cache_hits\":1"), "{done_warm}");
        assert_eq!(server.counter("serve.cache_hits"), 1);
        // The figure bytes are identical cold vs warm.
        let fig = |lines: &[String]| {
            lines
                .last()
                .unwrap()
                .split("\"figure\":")
                .nth(1)
                .unwrap()
                .to_string()
        };
        assert_eq!(fig(&cold), fig(&warm));
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_figure_kind_and_bad_toml_are_typed_rejections() {
        let dir = scratch_dir("reject");
        let server = Server::start(config(&dir), lowering()).expect("daemon starts");
        let socket = server.socket();
        let bad = roundtrip(
            &socket,
            "{\"op\":\"submit\",\"spec_toml\":\"not toml at all\"}",
        );
        assert!(bad[0].contains("invalid-config"), "{}", bad[0]);
        // Registry submissions need a registry.
        let reg = roundtrip(&socket, "{\"op\":\"submit\",\"spec\":\"fig2\"}");
        assert!(reg[0].contains("no spec registry"), "{}", reg[0]);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
