//! Sweep-as-a-service: the `smtsim-serve` daemon (DESIGN.md §17).
//!
//! Every figure binary rebuilds its world per invocation: labs,
//! normalization runs and sweep results all die with the process. This
//! crate turns the sweep engine into a long-running service. A daemon
//! listens on a Unix socket for line-delimited JSON requests carrying
//! an [`ExperimentSpec`] (inline TOML body or committed registry id),
//! expands each spec into its `mix × config` cell matrix, shards the
//! cells over a shared worker pool — reusing the `RunBudget`
//! watchdogs, `CellPanic`/`CellTimeout` isolation and retry layer of
//! the sweep engine cell for cell — and streams per-cell results back
//! incrementally, one JSON line each, followed by the fully rendered
//! figure.
//!
//! Results land in a **persistent content-addressed cache**
//! ([`cache::ResultCache`]): one sweep-journal file per *experiment
//! universe* (the spec-fingerprint-stripped
//! [`Lab::journal_universe`]), each record keyed by the existing
//! `cell_key(mix, RobConfig::fingerprint())`. Identical cells from
//! different specs — or from a daemon restarted on the same cache
//! directory — are served from disk instead of recomputed, and the
//! warm normalization tables are kept in memory per universe across
//! requests. Because the cache speaks the exact journal format of the
//! offline bins, a corrupted record surfaces as a typed
//! `JournalError::Corrupt`, never as wrong bytes.
//!
//! Multi-client behaviour: requests are admitted up to a bounded
//! queue (a full queue answers a typed *retryable* rejection without
//! ever blocking the accept loop), cells are scheduled round-robin
//! across active requests (fair multi-client progress), a cell
//! already being computed for one request is *deferred* for any other
//! (single-flight — it resolves as a cache hit once the first
//! computation lands), and a client that disconnects mid-stream has
//! its queued cells cancelled immediately and its in-flight cells
//! within one watchdog poll via the per-request [`CancelToken`].
//! Cache hit/miss/in-flight counters are exported through
//! `smtsim-obs`'s `MetricsRegistry` and served over the protocol.
//!
//! The daemon is deliberately **env-free**: it consumes a typed
//! [`ServeConfig`] plus a [`SpecLowering`] strategy, so the bench
//! layer keeps the single environment-knob funnel (`BenchEnv`) and
//! supplies the spec-to-lab lowering the offline bins use — which is
//! what makes the served bytes provably identical to the offline
//! `spec` bin (`tests/serve.rs`).
//!
//! [`ExperimentSpec`]: smtsim_rob2::ExperimentSpec
//! [`Lab::journal_universe`]: smtsim_rob2::Lab::journal_universe
//! [`CancelToken`]: smtsim_pipeline::CancelToken

pub mod cache;
pub mod protocol;
pub mod server;

pub use cache::{universe_of, ResultCache};
pub use protocol::{Request, SpecSource};
pub use server::{PlainLowering, ServeConfig, Server, SpecLowering};
