//! The persistent content-addressed result cache behind the daemon.
//!
//! Layout: one sweep-journal file per *experiment universe* under the
//! cache directory —
//!
//! ```text
//! <cache_dir>/<universe fnv64 hex>.jsonl
//! ```
//!
//! — where the universe is [`universe_of`]: the lab's
//! `journal_universe()` with the **spec fingerprint stripped**. The
//! offline resume path folds the spec's own fingerprint into the
//! universe so a journal can never be resumed under an edited spec
//! file; the serve cache deliberately drops that one component, and
//! only it, because cell bytes depend solely on the lowered lab state
//! plus the config fingerprint in the cell key. Two different specs
//! (say `fig2` and a superset of it) that lower to the same lab state
//! therefore *share* cells — the content-addressing that makes
//! overlapping requests cache hits — while any knob that can change a
//! cell byte (seed, budgets, warm-up, machine, fault plans, retry
//! watchdogs) still forces a different shard file.
//!
//! Shards are the exact PR-6 journal format, opened through
//! [`Journal::open`]: a restarted daemon pointed at the same directory
//! comes back warm, and a damaged record is a typed
//! [`JournalError::Corrupt`] — served to the client as a
//! `journal-corrupt` error, never as silently recomputed-or-wrong
//! bytes. Alongside the on-disk shards the cache keeps the warm
//! normalization tables per universe in memory, so a request for an
//! already-normalized universe skips phase 1 entirely.

use smtsim_rob2::journal::fingerprint_str;
use smtsim_rob2::{Journal, JournalError, Lab, NormTable};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The serve-cache universe of a lowered lab: `journal_universe()`
/// with the spec fingerprint excluded (see the module docs for why
/// that is sound and necessary). Restores the lab unchanged.
pub fn universe_of(lab: &mut Lab) -> String {
    let fp = lab.spec_fingerprint.take();
    let universe = lab.journal_universe();
    lab.spec_fingerprint = fp;
    universe
}

/// A directory of per-universe journal shards plus warm in-memory
/// normalization tables. Cheap to share (`Arc` it inside the server).
pub struct ResultCache {
    dir: PathBuf,
    /// Open shard handles, one per universe seen since daemon start.
    /// Keeping them open means all requests in one universe append to
    /// one shared [`Journal`] whose in-memory view is live.
    shards: Mutex<BTreeMap<String, Arc<Journal>>>,
    /// Warm phase-1 tables per universe, merged across requests.
    norms: Mutex<BTreeMap<String, NormTable>>,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory. Shards are
    /// opened lazily per universe on first request.
    pub fn open(dir: &Path) -> io::Result<ResultCache> {
        fs::create_dir_all(dir)?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
            shards: Mutex::new(BTreeMap::new()),
            norms: Mutex::new(BTreeMap::new()),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk path of the shard for `universe`. The file name is a
    /// second content hash of the universe string so arbitrary
    /// fingerprints can never escape the directory.
    pub fn shard_path(&self, universe: &str) -> PathBuf {
        self.dir
            .join(format!("{}.jsonl", fingerprint_str(universe)))
    }

    /// The shared journal shard for `universe`, opening (and
    /// validating) the on-disk file on first use. Corruption and
    /// universe mismatches surface typed.
    pub fn shard(&self, universe: &str) -> Result<Arc<Journal>, JournalError> {
        let mut shards = self.shards.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(j) = shards.get(universe) {
            return Ok(j.clone());
        }
        let journal = Arc::new(Journal::open(&self.shard_path(universe), universe)?);
        shards.insert(universe.to_string(), journal.clone());
        Ok(journal)
    }

    /// Drops the open handle for `universe` so the next request
    /// re-reads the file from disk — the hook the recovery tests use
    /// to exercise reopen-after-crash inside one process.
    pub fn evict_shard(&self, universe: &str) {
        self.shards
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(universe);
    }

    /// Seeds `lab`'s single-thread normalization cache from the warm
    /// table held for `universe`, if any.
    pub fn seed_lab(&self, universe: &str, lab: &mut Lab) {
        let norms = self.norms.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(table) = norms.get(universe) {
            lab.seed_norm_cache(table);
        }
    }

    /// Folds a freshly computed normalization table into the warm
    /// store for `universe`.
    pub fn store_norm(&self, universe: &str, table: &NormTable) {
        let mut norms = self.norms.lock().unwrap_or_else(|e| e.into_inner());
        norms
            .entry(universe.to_string())
            .and_modify(|warm| warm.merge(table))
            .or_insert_with(|| table.clone());
    }

    /// Number of warm normalization entries held for `universe`
    /// (observability for tests and metrics).
    pub fn warm_norm_entries(&self, universe: &str) -> usize {
        self.norms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(universe)
            .map_or(0, NormTable::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtsim_rob2::RobConfig;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smtsim-serve-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A small-budget lab so unit tests stay fast.
    fn small_lab(seed: u64) -> Lab {
        Lab::new(seed).with_budgets(2_000, 2_000).with_warmup(1_000)
    }

    #[test]
    fn universe_strips_only_the_spec_fingerprint() {
        let mut a = small_lab(42).with_spec_fingerprint(Some("spec-A".into()));
        let mut b = small_lab(42).with_spec_fingerprint(Some("spec-B".into()));
        let mut plain = small_lab(42);
        let ua = universe_of(&mut a);
        assert_eq!(
            ua,
            universe_of(&mut b),
            "spec identity must not shard the cache"
        );
        assert_eq!(ua, universe_of(&mut plain));
        assert_eq!(
            a.spec_fingerprint.as_deref(),
            Some("spec-A"),
            "lab restored"
        );
        // ...but a byte-affecting knob still does.
        let mut other_seed = small_lab(43);
        assert_ne!(ua, universe_of(&mut other_seed));
        // And the stripped universe still matches what a journal-armed
        // figure run would use when it has no spec fingerprint at all.
        assert_eq!(ua, plain.journal_universe());
    }

    #[test]
    fn shards_are_shared_reopened_and_evictable() {
        let dir = scratch("shard");
        let cache = ResultCache::open(&dir).unwrap();
        let mut lab = small_lab(42);
        let uni = universe_of(&mut lab);
        let j1 = cache.shard(&uni).unwrap();
        let j2 = cache.shard(&uni).unwrap();
        assert!(Arc::ptr_eq(&j1, &j2), "one live handle per universe");
        assert!(j1.path().starts_with(&dir));

        // A *different universe* maps to a different shard file.
        let mut lab2 = small_lab(7);
        let uni2 = universe_of(&mut lab2);
        assert_ne!(cache.shard_path(&uni), cache.shard_path(&uni2));

        let norm = lab.norm_table(&[1]);
        let (run, attempts) = lab.run_cell_with_retries(1, RobConfig::Baseline(32), &norm);
        j1.record("1|test", &run.expect("cell runs"), attempts)
            .unwrap();

        // Evict, reopen from disk: the record survives the round trip.
        cache.evict_shard(&uni);
        let j3 = cache.shard(&uni).unwrap();
        assert!(!Arc::ptr_eq(&j1, &j3));
        assert!(j3.lookup("1|test").is_some(), "warm after reopen");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_norms_merge_and_seed() {
        let dir = scratch("norm");
        let cache = ResultCache::open(&dir).unwrap();
        let mut lab = small_lab(42);
        let uni = universe_of(&mut lab);
        assert_eq!(cache.warm_norm_entries(&uni), 0);
        let t1 = lab.norm_table(&[1]);
        cache.store_norm(&uni, &t1);
        let n1 = cache.warm_norm_entries(&uni);
        assert!(n1 > 0);
        let t2 = lab.norm_table(&[2]);
        cache.store_norm(&uni, &t2);
        assert!(
            cache.warm_norm_entries(&uni) > n1,
            "tables merge, not replace"
        );
        // A fresh same-universe lab seeded from the warm table covers
        // both mixes without re-running any phase-1 work.
        let mut fresh = small_lab(42);
        cache.seed_lab(&uni, &mut fresh);
        let before = fresh.cached_norm_runs();
        let again = fresh.norm_table(&[1, 2]);
        assert_eq!(again.len(), t1.len() + t2.len());
        assert_eq!(
            fresh.cached_norm_runs(),
            before,
            "phase 1 fully served from the warm table"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
