//! Crash-tolerance regression suite (DESIGN.md §13): the resumable
//! sweep journal, the per-cell watchdog and the retry layer.
//!
//! The invariants under test:
//!
//! * a sweep killed mid-flight and relaunched on its journal produces
//!   **byte-identical** figures to an uninterrupted sweep, at any
//!   `SMTSIM_JOBS`;
//! * journal damage is never silently absorbed — a truncated final
//!   line (the only state a crashed append can leave) is tolerated,
//!   everything else is a typed [`JournalError`];
//! * a journal recorded under different lab knobs is rejected
//!   ([`JournalError::UniverseMismatch`]), never reused;
//! * a wedged cell is terminated by the cycle watchdog as a typed
//!   [`SimError::CellTimeout`] rendered `n/a`, and the rest of the
//!   sweep completes;
//! * a transiently-faulted cell is recovered by retry-with-backoff
//!   and reported through [`SweepHealth`] and the metrics registry.

use smtsim_obs::MetricsRegistry;
use smtsim_pipeline::{FaultPlan, SimError};
use smtsim_rob2::{
    figures, report, ExperimentSpec, JournalError, Lab, RobConfig, SweepCell, TwoLevelConfig,
};
use std::fs;
use std::path::PathBuf;

/// A scratch path under the target-adjacent temp dir, unique per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("smtsim-resilience-tests");
    fs::create_dir_all(&dir).expect("temp dir is writable");
    let path = dir.join(format!("{tag}-{}.jsonl", std::process::id()));
    let _ = fs::remove_file(&path);
    path
}

fn small_lab() -> Lab {
    Lab::new(7).with_budgets(6_000, 6_000)
}

/// The Figure 2 cell matrix in dispatch order (configuration-major).
fn fig2_cells(mixes: &[usize]) -> Vec<SweepCell> {
    [
        RobConfig::Baseline(32),
        RobConfig::Baseline(128),
        RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
    ]
    .iter()
    .flat_map(|&cfg| mixes.iter().map(move |&m| (m, cfg)))
    .collect()
}

#[test]
fn kill_and_resume_is_byte_identical_at_any_job_count() {
    let mixes = [1usize, 9];
    let cells = fig2_cells(&mixes);

    // Reference: one uninterrupted journal-armed sweep.
    let reference = {
        let path = scratch("reference");
        let mut lab = small_lab().with_journal(&path);
        let text = report::render_figure(&figures::fig2(&mut lab, &mixes));
        let _ = fs::remove_file(&path);
        text
    };

    for jobs in [1usize, 4] {
        let path = scratch(&format!("resume-jobs{jobs}"));
        // "Crash" after 2 of 6 cells.
        let mut lab = small_lab().with_journal(&path);
        let executed = lab
            .sweep_killed_after(&cells, 2)
            .expect("journal is writable");
        assert_eq!(executed, 2);

        // Relaunch: a fresh lab on the half-written journal.
        let mut lab = small_lab().with_jobs(Some(jobs)).with_journal(&path);
        let on_file = lab.open_journal().expect("journal reopens");
        assert_eq!(on_file, 2, "the two completed cells are on file");
        let resumed = report::render_figure(&figures::fig2(&mut lab, &mixes));
        assert_eq!(
            resumed, reference,
            "resumed sweep at jobs={jobs} must be byte-identical"
        );

        // The journal now holds every cell; a third launch re-runs
        // nothing and still renders the same bytes.
        let mut lab = small_lab().with_journal(&path);
        let full = lab.open_journal().expect("journal reopens");
        assert_eq!(full, cells.len());
        let replayed = lab.sweep_cells(&cells);
        assert_eq!(replayed.journal_hits(), cells.len());
        let _ = fs::remove_file(&path);
    }
}

#[test]
fn truncated_final_record_is_tolerated_and_recovered() {
    let path = scratch("truncated");
    let cells = fig2_cells(&[1]);
    let mut lab = small_lab().with_journal(&path);
    lab.sweep_killed_after(&cells, 2)
        .expect("two cells journal");

    // Simulate a crash mid-append: chop the final record in half.
    let text = fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 3, "header + 2 records");
    let keep = text.len() - text.lines().last().unwrap().len() / 2 - 1;
    fs::write(&path, &text[..keep]).unwrap();

    // The damaged journal opens with one record; the sweep re-runs the
    // lost cell and the figure matches an uninterrupted reference.
    let mut lab = small_lab().with_journal(&path);
    assert_eq!(
        lab.open_journal().expect("truncated final line tolerated"),
        1
    );
    let resumed = report::render_figure(&figures::fig2(&mut lab, &[1]));
    let reference = {
        let ref_path = scratch("truncated-ref");
        let mut lab = small_lab().with_journal(&ref_path);
        let text = report::render_figure(&figures::fig2(&mut lab, &[1]));
        let _ = fs::remove_file(&ref_path);
        text
    };
    assert_eq!(resumed, reference);
    let _ = fs::remove_file(&path);
}

#[test]
fn garbage_mid_file_is_a_typed_corruption_error() {
    let path = scratch("garbage");
    let cells = fig2_cells(&[1]);
    let mut lab = small_lab().with_journal(&path);
    lab.sweep_killed_after(&cells, 2)
        .expect("two cells journal");

    // Damage a NON-final record — a state no crashed append can
    // produce, so it must be refused, not skipped.
    let text = fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let mangled = format!("{}\n{}\n{}\n", lines[0], "{\"key\":garbage", lines[2]);
    fs::write(&path, mangled).unwrap();

    let mut lab = small_lab().with_journal(&path);
    match lab.open_journal() {
        Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 2),
        other => panic!("corruption accepted: {other:?}"),
    }

    // A flipped crc is corruption too, even with valid JSON around it.
    let flipped = text.replacen("\"crc\":\"", "\"crc\":\"0", 1);
    fs::write(&path, flipped).unwrap();
    let mut lab = small_lab().with_journal(&path);
    assert!(
        matches!(lab.open_journal(), Err(JournalError::Corrupt { .. })),
        "crc mismatch must be typed corruption"
    );
    let _ = fs::remove_file(&path);
}

#[test]
fn stale_universe_is_rejected_never_reused() {
    let path = scratch("stale");
    let mut lab = small_lab().with_journal(&path);
    lab.sweep_killed_after(&fig2_cells(&[1]), 1)
        .expect("one cell journals");

    // Any knob that changes cell bytes must invalidate the journal.
    let relabeled: Vec<(&str, Lab)> = vec![
        ("seed", Lab::new(8).with_budgets(6_000, 6_000)),
        ("budget", small_lab().with_budgets(5_000, 6_000)),
        ("warmup", small_lab().with_warmup(1_234)),
        ("retries", small_lab().with_retries(1)),
        (
            "cycle budget",
            small_lab().with_cell_cycle_budget(Some(1_000_000)),
        ),
    ];
    for (what, lab) in relabeled {
        let mut lab = lab.with_journal(&path);
        assert!(
            matches!(
                lab.open_journal(),
                Err(JournalError::UniverseMismatch { .. })
            ),
            "{what} change must reject the journal"
        );
    }
    // The job count is scheduling, not physics: not part of the
    // universe, so resuming at a different SMTSIM_JOBS is fine.
    let mut lab = small_lab().with_jobs(Some(4)).with_journal(&path);
    assert_eq!(lab.open_journal().expect("jobs don't change bytes"), 1);
    let _ = fs::remove_file(&path);
}

#[test]
fn edited_spec_rejects_a_resumed_journal() {
    // A journal recorded under one experiment spec must not be resumed
    // under an edited spec: the spec's content fingerprint is part of
    // the journal universe.
    let text = "[experiment]\nid = \"fig2\"\ntitle = \"Figure 2: FT with 2-Level R-ROB\"\n\
                kind = \"figure\"\nschemes = [\"baseline-32\", \"baseline-128\", \"r-rob-16\"]\n";
    let spec = ExperimentSpec::parse("fig2.toml", text).expect("spec parses");
    let path = scratch("spec-stale");
    let mut lab = small_lab()
        .with_spec_fingerprint(Some(spec.fingerprint.clone()))
        .with_journal(&path);
    lab.sweep_killed_after(&fig2_cells(&[1]), 1)
        .expect("one cell journals");

    // A semantic edit (different scheme list) changes the fingerprint
    // and the journal is rejected, typed.
    let edited = ExperimentSpec::parse("fig2.toml", &text.replace("r-rob-16", "r-rob-8"))
        .expect("edited spec parses");
    assert_ne!(edited.fingerprint, spec.fingerprint);
    let mut lab = small_lab()
        .with_spec_fingerprint(Some(edited.fingerprint))
        .with_journal(&path);
    assert!(
        matches!(
            lab.open_journal(),
            Err(JournalError::UniverseMismatch { .. })
        ),
        "edited spec must reject the journal"
    );
    // So does dropping the spec stamp entirely (legacy lab vs spec lab).
    let mut lab = small_lab().with_journal(&path);
    assert!(
        matches!(
            lab.open_journal(),
            Err(JournalError::UniverseMismatch { .. })
        ),
        "a spec-stamped journal is not resumable by an unstamped lab"
    );
    // A cosmetic edit (comments/whitespace) keeps the canonical
    // rendering, so the journal resumes.
    let cosmetic = ExperimentSpec::parse("fig2.toml", &format!("# comment\n\n{text}"))
        .expect("cosmetic spec parses");
    assert_eq!(cosmetic.fingerprint, spec.fingerprint);
    let mut lab = small_lab()
        .with_spec_fingerprint(Some(cosmetic.fingerprint))
        .with_journal(&path);
    assert_eq!(lab.open_journal().expect("cosmetic edits resume"), 1);
    let _ = fs::remove_file(&path);
}

#[test]
fn wedged_cell_is_terminated_and_rendered_na_while_rest_completes() {
    // A fault plan that drops every L2 fill starves the mix forever;
    // with the deadlock watchdog pushed out of reach, the cycle budget
    // is the only thing standing between the sweep and a wedge.
    let mut lab = small_lab().with_cell_cycle_budget(Some(60_000));
    lab.machine.deadlock_cycles = u64::MAX;
    let mut plan = FaultPlan::new(5);
    plan.drop_fill = 1;
    lab.set_fault(Some(1), plan);

    let fig = figures::fig2(&mut lab, &[1, 9]);
    // Mix 1 times out in every configuration; Mix 9 completes.
    assert_eq!(fig.failures.len(), 3);
    for line in &fig.failures {
        assert!(line.contains("timed out at cycle 60000"), "{line}");
    }
    for series in &fig.series {
        assert!(series.points[0].1.is_none(), "wedged cell renders n/a");
        assert!(series.points[1].1.is_some(), "healthy cell completes");
    }
    assert_eq!(
        fig.health.as_deref(),
        Some("sweep health: 3 ok (0 retried), 3 timed out, 0 failed")
    );
    let rendered = report::render_figure(&fig);
    assert!(rendered.contains("n/a"));
    assert!(rendered.contains("timed out at cycle 60000"));
}

#[test]
fn transient_fault_recovers_via_retry_and_reports_health() {
    let mixes = [1usize, 9];
    // Reference bytes from a lab that never faults (same machine).
    let reference = {
        let mut lab = small_lab();
        lab.machine.deadlock_cycles = 3_000;
        lab.sweep(&fig2_cells(&mixes))
    };

    let mut lab = small_lab().with_retries(2);
    lab.machine.deadlock_cycles = 3_000;
    let mut plan = FaultPlan::new(5);
    plan.drop_fill = 1;
    // Active on attempt 1 only: the canonical transient fault.
    lab.set_transient_fault(1, plan, 1);

    let report = lab.sweep_cells(&fig2_cells(&mixes));
    assert!(report.health.all_ok(), "every cell recovered");
    assert_eq!(report.health.retried, 3, "all three Mix 1 cells retried");
    assert_eq!(report.health.extra_attempts, 3);

    // Recovered cells are byte-identical to never-faulted ones.
    let healed: Vec<String> = report
        .outcomes
        .iter()
        .map(|o| format!("{:?}", o.result))
        .collect();
    let clean: Vec<String> = reference.iter().map(|r| format!("{r:?}")).collect();
    assert_eq!(healed, clean);

    // The counters surface through the observability registry.
    let mut reg = MetricsRegistry::new();
    report.record_metrics(&mut reg);
    assert_eq!(reg.counter("sweep.cells_ok"), 6);
    assert_eq!(reg.counter("sweep.cells_retried"), 3);
    assert_eq!(reg.counter("sweep.retry_attempts"), 3);
    assert_eq!(reg.counter("sweep.cells_timed_out"), 0);
    let rendered = reg.render();
    assert!(rendered.contains("sweep.cells_retried = 3"), "{rendered}");
}

#[test]
fn fault_plan_times_retry_matrix_never_aborts() {
    // Smoke over the fault-plan × retry matrix: every combination must
    // end in recovery or a typed n/a — never a process abort.
    let mut plans = Vec::new();
    {
        let mut p = FaultPlan::new(11);
        p.drop_fill = 1; // starvation → deadlock (transient class)
        plans.push(("drop", p));
    }
    {
        let mut p = FaultPlan::new(12);
        p.delay_fill = 2;
        p.delay_cycles = 64; // absorbed, never an error
        plans.push(("delay", p));
    }
    {
        let mut p = FaultPlan::new(13);
        p.corrupt_dod = 2; // predictor noise, absorbed
        plans.push(("corrupt", p));
    }
    for (name, plan) in plans {
        for retries in [0u32, 1] {
            let mut lab = small_lab().with_retries(retries);
            lab.machine.deadlock_cycles = 3_000;
            lab.set_transient_fault(1, plan.clone(), 1);
            let report = lab.sweep_cells(&[(1, RobConfig::Baseline(32))]);
            let o = &report.outcomes[0];
            match &o.result {
                Ok(_) => {
                    // Absorbed fault or recovered-by-retry.
                    assert!(
                        o.attempts <= retries + 1,
                        "{name}/r{retries}: attempts bounded"
                    );
                }
                Err(SimError::Deadlock { .. } | SimError::CellTimeout { .. }) => {
                    assert_eq!(
                        o.attempts,
                        retries + 1,
                        "{name}/r{retries}: every retry spent before giving up"
                    );
                }
                Err(other) => panic!("{name}/r{retries}: unexpected error {other}"),
            }
            assert_eq!(report.health.total(), 1);
        }
    }
}
