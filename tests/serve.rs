//! End-to-end differential proof for the `smtsim-serve` daemon
//! (DESIGN.md §17): two concurrent clients submit overlapping figure
//! specs — the committed `fig2` by registry id and an inline superset
//! of it — and every streamed figure must be **byte-identical** to
//! what the offline `spec` bin prints for the same spec under the
//! same knobs, at worker fan-outs of 1 and 4. The overlap cells must
//! be served from the content-addressed cache exactly once: the
//! daemon's hit/miss counters are asserted to the cell.
//!
//! All knobs reach the daemon and the offline reference through
//! `Command::env` on child processes — nothing here mutates this test
//! process's environment.

use smtsim_bench::serve_support as client;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BUDGET: &str = "3000";
const WARMUP: &str = "1000";
const MIXES: &str = "1,2";

/// fig2's three schemes plus one more, same normalization reference:
/// lowers to the same cell universe, so its fig2-shaped cells must be
/// cache hits.
const SUPERSET_TOML: &str = "\
[experiment]
id = \"fig2_superset\"
title = \"Figure 2 superset\"
kind = \"figure\"
norm = \"baseline-32\"
schemes = [\"baseline-32\", \"baseline-128\", \"r-rob-16\", \"p-rob-5\"]
";

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smtsim-serve-e2e-{tag}-{}", std::process::id()))
}

/// A daemon child on a scratch socket, killed on drop so a failing
/// assertion never leaks a process.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn spawn(tag: &str, jobs: usize, cache: &Path) -> Daemon {
        let socket = scratch(&format!("{tag}-jobs{jobs}")).with_extension("sock");
        let _ = std::fs::remove_file(&socket);
        let child = Command::new(env!("CARGO_BIN_EXE_serve"))
            .env_clear()
            .env("BUDGET", BUDGET)
            .env("WARMUP", WARMUP)
            .env("MIXES", MIXES)
            .env("SMTSIM_JOBS", jobs.to_string())
            .env("SMTSIM_SERVE_SOCKET", &socket)
            .env("SMTSIM_SERVE_CACHE", cache)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("serve bin spawns");
        let daemon = Daemon { child, socket };
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Ok(lines) = client::request_lines(&daemon.socket, "{\"op\":\"ping\"}") {
                if lines
                    .last()
                    .is_some_and(|l| client::line_str(l, "type").as_deref() == Some("pong"))
                {
                    return daemon;
                }
            }
            assert!(Instant::now() < deadline, "daemon never became ready");
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    fn shutdown(mut self) {
        let _ = client::request_lines(&self.socket, "{\"op\":\"shutdown\"}");
        let status = self.child.wait().expect("daemon exits after shutdown");
        assert!(status.success(), "daemon exit after drain: {status}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The offline reference: the generic `spec` bin under the same knobs,
/// with a fresh journal armed so its footer matches the daemon's
/// journal-backed render. Returns stdout — exactly the figure bytes.
fn offline_figure(spec_path: &Path, jobs: usize, tag: &str) -> String {
    let journal = scratch(&format!("offline-{tag}-jobs{jobs}")).with_extension("jsonl");
    let _ = std::fs::remove_file(&journal);
    let out = Command::new(env!("CARGO_BIN_EXE_spec"))
        .env_clear()
        .env("BUDGET", BUDGET)
        .env("WARMUP", WARMUP)
        .env("MIXES", MIXES)
        .env("SMTSIM_JOBS", jobs.to_string())
        .env("SMTSIM_SPEC", spec_path)
        .env("SMTSIM_JOURNAL", &journal)
        .output()
        .expect("spec bin runs");
    let _ = std::fs::remove_file(&journal);
    assert!(
        out.status.success(),
        "offline spec bin failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("figure text is UTF-8")
}

#[test]
fn concurrent_overlapping_clients_match_the_offline_bin_to_the_byte() {
    let superset_path = scratch("superset-spec").with_extension("toml");
    std::fs::write(&superset_path, SUPERSET_TOML).unwrap();
    let fig2_path = smtsim_bench::spec_dir().join("fig2.toml");

    for jobs in [1usize, 4] {
        let cache = scratch("differential-cache").join(format!("jobs{jobs}"));
        let _ = std::fs::remove_dir_all(&cache);
        let daemon = Daemon::spawn("differential", jobs, &cache);

        // Two clients race: fig2 by registry id, the superset inline.
        let socket_a = daemon.socket.clone();
        let a = std::thread::spawn(move || {
            client::request_lines(&socket_a, &client::submit_registry("fig2")).unwrap()
        });
        let socket_b = daemon.socket.clone();
        let b = std::thread::spawn(move || {
            client::request_lines(&socket_b, &client::submit_inline(SUPERSET_TOML)).unwrap()
        });
        let lines_a = a.join().expect("client A");
        let lines_b = b.join().expect("client B");

        // Streamed figures == offline `spec` bin output, byte for byte.
        assert_eq!(
            client::figure_of(&lines_a).unwrap(),
            offline_figure(&fig2_path, jobs, "fig2"),
            "fig2 served bytes drifted from the offline bin at jobs={jobs}"
        );
        assert_eq!(
            client::figure_of(&lines_b).unwrap(),
            offline_figure(&superset_path, jobs, "superset"),
            "superset served bytes drifted from the offline bin at jobs={jobs}"
        );

        // fig2: 3 schemes × 2 mixes = 6 cells; superset: 4 × 2 = 8.
        // The 6 overlap cells are computed once and hit once — however
        // the two requests interleave.
        let done_a = client::terminal_line(&lines_a, "done").unwrap();
        let done_b = client::terminal_line(&lines_b, "done").unwrap();
        let stat = |l: &str, f: &str| client::line_u64(l, f).unwrap();
        assert_eq!(stat(done_a, "cells"), 6);
        assert_eq!(stat(done_b, "cells"), 8);
        assert_eq!(
            stat(done_a, "cache_hits") + stat(done_b, "cache_hits"),
            6,
            "every overlap cell must be a hit"
        );
        assert_eq!(
            stat(done_a, "cache_misses") + stat(done_b, "cache_misses"),
            8,
            "every unique cell computed exactly once"
        );
        assert_eq!(stat(done_a, "failed") + stat(done_b, "failed"), 0);

        // The daemon-wide counters agree (asserted via the protocol —
        // the metrics satellite).
        assert_eq!(
            client::counter_of(&daemon.socket, "serve.cache_hits").unwrap(),
            6
        );
        assert_eq!(
            client::counter_of(&daemon.socket, "serve.cache_misses").unwrap(),
            8
        );
        assert_eq!(
            client::counter_of(&daemon.socket, "serve.requests_completed").unwrap(),
            2
        );

        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&cache);
    }
    let _ = std::fs::remove_file(&superset_path);
}

#[test]
fn streamed_cell_lines_cover_the_matrix_exactly_once() {
    let cache = scratch("cells-cache");
    let _ = std::fs::remove_dir_all(&cache);
    let daemon = Daemon::spawn("cells", 2, &cache);
    let lines = client::request_lines(&daemon.socket, &client::submit_registry("fig2")).unwrap();

    assert_eq!(
        client::line_str(&lines[0], "type").as_deref(),
        Some("accepted"),
        "first line: {}",
        lines[0]
    );
    let cells = client::line_u64(&lines[0], "cells").unwrap() as usize;
    let cell_lines: Vec<&String> = lines
        .iter()
        .filter(|l| client::line_str(l, "type").as_deref() == Some("cell"))
        .collect();
    assert_eq!(cell_lines.len(), cells, "one streamed line per cell");
    let mut indices: Vec<u64> = cell_lines
        .iter()
        .map(|l| client::line_u64(l, "index").unwrap())
        .collect();
    indices.sort_unstable();
    assert_eq!(
        indices,
        (0..cells as u64).collect::<Vec<_>>(),
        "every matrix index exactly once"
    );
    for l in &cell_lines {
        assert_eq!(client::line_str(l, "status").as_deref(), Some("ok"), "{l}");
    }

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn half_open_probe_does_not_wedge_the_daemon() {
    // A client that sends nothing keeps a connection thread parked in
    // read; the daemon must still serve others and shut down cleanly.
    let cache = scratch("halfopen-cache");
    let _ = std::fs::remove_dir_all(&cache);
    let daemon = Daemon::spawn("halfopen", 1, &cache);
    let idle = std::os::unix::net::UnixStream::connect(&daemon.socket).unwrap();
    let lines = client::request_lines(&daemon.socket, "{\"op\":\"ping\"}").unwrap();
    assert_eq!(client::line_str(&lines[0], "type").as_deref(), Some("pong"));
    drop(idle);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn malformed_submissions_answer_typed_errors() {
    let cache = scratch("badreq-cache");
    let _ = std::fs::remove_dir_all(&cache);
    let daemon = Daemon::spawn("badreq", 1, &cache);
    for (req, kind) in [
        ("this is not json", "invalid-request"),
        (
            "{\"op\":\"submit\",\"spec\":\"no_such_spec\"}",
            "invalid-config",
        ),
        (
            "{\"op\":\"submit\",\"spec_toml\":\"[experiment]\\nid = \\\"x\\\"\\nkind = \\\"suite\\\"\\nspecs = [\\\"fig2\\\"]\\n\"}",
            "unsupported-kind",
        ),
    ] {
        let lines = client::request_lines(&daemon.socket, req).unwrap();
        let last = lines.last().expect("an error line");
        assert_eq!(
            client::line_str(last, "kind").as_deref(),
            Some(kind),
            "request {req:?} answered {last}"
        );
    }
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}
