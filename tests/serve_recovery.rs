//! Crash-recovery proof for the serve daemon's persistent cache
//! (DESIGN.md §17): SIGKILL the daemon mid-sweep, restart it on the
//! same cache directory, and the durably journaled cells must be
//! served warm — with the final figure byte-identical to the offline
//! `spec` bin. A deliberately corrupted cache record must surface as
//! the typed `journal-corrupt` protocol error, never as silently
//! recomputed-or-wrong bytes.

use smtsim_bench::serve_support as client;
use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

// A budget high enough that six fig2 cells take a while on one
// worker: the kill lands mid-sweep, after at least two durable cells.
const BUDGET: &str = "20000";
const WARMUP: &str = "1000";
const MIXES: &str = "1,2";

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "smtsim-serve-recovery-{tag}-{}",
        std::process::id()
    ))
}

fn spawn_daemon(socket: &Path, cache: &Path) -> Child {
    let _ = std::fs::remove_file(socket);
    Command::new(env!("CARGO_BIN_EXE_serve"))
        .env_clear()
        .env("BUDGET", BUDGET)
        .env("WARMUP", WARMUP)
        .env("MIXES", MIXES)
        .env("SMTSIM_JOBS", "1")
        .env("SMTSIM_SERVE_SOCKET", socket)
        .env("SMTSIM_SERVE_CACHE", cache)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve bin spawns")
}

fn wait_ready(socket: &Path) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(lines) = client::request_lines(socket, "{\"op\":\"ping\"}") {
            if lines
                .last()
                .is_some_and(|l| client::line_str(l, "type").as_deref() == Some("pong"))
            {
                return;
            }
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn shutdown(socket: &Path, mut child: Child) {
    let _ = client::request_lines(socket, "{\"op\":\"shutdown\"}");
    let status = child.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "daemon exit after drain: {status}");
}

/// The offline journal-armed reference figure for fig2 (same knobs as
/// the daemon runs under).
fn offline_fig2(tag: &str) -> String {
    let journal = scratch(&format!("offline-{tag}")).with_extension("jsonl");
    let _ = std::fs::remove_file(&journal);
    let out = Command::new(env!("CARGO_BIN_EXE_spec"))
        .env_clear()
        .env("BUDGET", BUDGET)
        .env("WARMUP", WARMUP)
        .env("MIXES", MIXES)
        .env("SMTSIM_JOBS", "1")
        .env("SMTSIM_SPEC", smtsim_bench::spec_dir().join("fig2.toml"))
        .env("SMTSIM_JOURNAL", &journal)
        .output()
        .expect("spec bin runs");
    let _ = std::fs::remove_file(&journal);
    assert!(
        out.status.success(),
        "offline spec bin failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("figure text is UTF-8")
}

/// The one journal shard inside a cache directory.
fn shard_file(cache: &Path) -> PathBuf {
    let mut shards: Vec<PathBuf> = std::fs::read_dir(cache)
        .expect("cache directory exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    assert_eq!(shards.len(), 1, "exactly one universe shard: {shards:?}");
    shards.pop().unwrap()
}

#[test]
fn sigkilled_daemon_restarts_warm_and_byte_identical() {
    let cache = scratch("warm-cache");
    let _ = std::fs::remove_dir_all(&cache);
    let socket = scratch("warm").with_extension("sock");
    let mut first = spawn_daemon(&socket, &cache);
    wait_ready(&socket);

    // Submit fig2, read until two cells have streamed (each streamed
    // cell is already durable in the shard journal), then SIGKILL the
    // daemon mid-sweep.
    {
        let mut stream = UnixStream::connect(&socket).unwrap();
        stream
            .write_all(format!("{}\n", client::submit_registry("fig2")).as_bytes())
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut seen_cells = 0;
        while seen_cells < 2 {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).unwrap() > 0,
                "stream ended before two cells"
            );
            match client::line_str(&line, "type").as_deref() {
                Some("cell") => seen_cells += 1,
                Some("accepted") => {}
                other => panic!("unexpected line {other:?}: {line}"),
            }
        }
        first.kill().expect("SIGKILL the daemon");
        let _ = first.wait();
    }
    let durable = std::fs::read_to_string(shard_file(&cache)).unwrap();
    let records = durable.lines().count().saturating_sub(1);
    assert!(
        records >= 2,
        "two streamed cells must be on disk, got {records}"
    );

    // Restart on the same cache directory: the journaled cells are
    // warm, and the completed figure matches the offline bin exactly.
    let second = spawn_daemon(&socket, &cache);
    wait_ready(&socket);
    let lines = client::request_lines(&socket, &client::submit_registry("fig2")).unwrap();
    let done = client::terminal_line(&lines, "done").unwrap();
    let hits = client::line_u64(done, "cache_hits").unwrap();
    assert!(hits >= 2, "killed-run cells must be warm, hits={hits}");
    assert_eq!(client::line_u64(done, "failed"), Some(0));
    assert_eq!(
        client::figure_of(&lines).unwrap(),
        offline_fig2("warm"),
        "post-crash figure drifted from the offline bin"
    );

    // Idempotence: a third submission is all hits and byte-identical.
    let again = client::request_lines(&socket, &client::submit_registry("fig2")).unwrap();
    let done = client::terminal_line(&again, "done").unwrap();
    assert_eq!(client::line_u64(done, "cache_hits"), Some(6));
    assert_eq!(client::line_u64(done, "cache_misses"), Some(0));
    assert_eq!(
        client::figure_of(&again).unwrap(),
        client::figure_of(&lines).unwrap()
    );

    shutdown(&socket, second);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn corrupted_cache_record_is_a_typed_journal_corrupt_error() {
    let cache = scratch("corrupt-cache");
    let _ = std::fs::remove_dir_all(&cache);
    let socket = scratch("corrupt").with_extension("sock");

    // Populate the cache with one full fig2 sweep, then stop cleanly.
    let first = spawn_daemon(&socket, &cache);
    wait_ready(&socket);
    let lines = client::request_lines(&socket, &client::submit_registry("fig2")).unwrap();
    client::figure_of(&lines).expect("cold sweep completes");
    shutdown(&socket, first);

    // Damage a record in the middle of the shard (the final line is
    // allowed to be a torn append; mid-file damage never is).
    let shard = shard_file(&cache);
    let text = std::fs::read_to_string(&shard).unwrap();
    let mut on_disk: Vec<String> = text.lines().map(str::to_string).collect();
    assert!(on_disk.len() >= 3, "header plus several records");
    let damaged = on_disk[2].replacen("\"crc\":\"", "\"crc\":\"0", 1);
    assert_ne!(damaged, on_disk[2], "record must carry a crc to damage");
    on_disk[2] = damaged;
    std::fs::write(&shard, format!("{}\n", on_disk.join("\n"))).unwrap();

    // A restarted daemon must answer the typed, non-retryable
    // journal-corrupt error — and keep serving other traffic.
    let second = spawn_daemon(&socket, &cache);
    wait_ready(&socket);
    let lines = client::request_lines(&socket, &client::submit_registry("fig2")).unwrap();
    let last = lines.last().expect("an error line");
    assert_eq!(
        client::line_str(last, "type").as_deref(),
        Some("error"),
        "{last}"
    );
    assert_eq!(
        client::line_str(last, "kind").as_deref(),
        Some("journal-corrupt"),
        "{last}"
    );
    assert!(last.contains("\"retryable\":false"), "{last}");
    let pong = client::request_lines(&socket, "{\"op\":\"ping\"}").unwrap();
    assert_eq!(
        client::line_str(&pong[0], "type").as_deref(),
        Some("pong"),
        "daemon must survive a corrupt shard"
    );

    shutdown(&socket, second);
    let _ = std::fs::remove_dir_all(&cache);
}
