//! Property tests for the serve cache's content addressing
//! (DESIGN.md §17): any byte-affecting knob mutation must move a lab
//! into a *different* cache universe (so stale results can never be
//! served), while byte-irrelevant differences — spec identity, job
//! count, comment/whitespace edits to the spec TOML — must land in the
//! *same* universe with the same cell keys (so overlapping work is
//! actually shared).
//!
//! Runs against the vendored deterministic `proptest` shim: fixed
//! seeding, no shrinking, stable in CI.

use proptest::prelude::*;
use smtsim_bench::serve_support::EnvLowering;
use smtsim_bench::BenchEnv;
use smtsim_rob2::journal::cell_key;
use smtsim_rob2::{ExperimentSpec, Lab};
use smtsim_serve::universe_of;
use smtsim_serve::SpecLowering as _;

/// The knobs [`Lab::journal_universe`] folds that these properties
/// drive directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Knobs {
    seed: u64,
    mt_budget: u64,
    st_budget: u64,
    warmup: u64,
    retries: u32,
    cell_cycles: Option<u64>,
}

impl Knobs {
    fn lab(self) -> Lab {
        let mut lab = Lab::new(self.seed)
            .with_budgets(self.mt_budget, self.st_budget)
            .with_warmup(self.warmup);
        lab.retries = self.retries;
        lab.cell_cycle_budget = self.cell_cycles;
        lab
    }
}

fn knob_strategy() -> impl Strategy<Value = Knobs> {
    (
        1u64..20,
        1_000u64..5_000,
        1_000u64..5_000,
        0u64..3_000,
        0u32..3,
        0u64..4,
    )
        .prop_map(|(seed, mt, st, warmup, retries, cc)| Knobs {
            seed,
            mt_budget: mt,
            st_budget: st,
            warmup,
            retries,
            cell_cycles: (cc > 0).then_some(cc * 100_000),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn byte_affecting_knobs_shard_the_universe(a in knob_strategy(), b in knob_strategy()) {
        let (ua, ub) = (universe_of(&mut a.lab()), universe_of(&mut b.lab()));
        if a == b {
            prop_assert_eq!(ua, ub, "equal knobs must share a universe: {:?}", a);
        } else {
            prop_assert_ne!(ua, ub, "distinct knobs must not collide: {:?} vs {:?}", a, b);
        }
    }

    #[test]
    fn single_knob_mutations_always_move_the_universe(
        base in knob_strategy(),
        which in 0usize..6,
        delta in 1u64..10,
    ) {
        let mut mutated = base;
        match which {
            0 => mutated.seed += delta,
            1 => mutated.mt_budget += delta,
            2 => mutated.st_budget += delta,
            3 => mutated.warmup += delta,
            4 => mutated.retries += delta as u32,
            _ => {
                mutated.cell_cycles =
                    Some(mutated.cell_cycles.unwrap_or(0) + delta * 100_000);
            }
        }
        prop_assert_ne!(
            universe_of(&mut base.lab()),
            universe_of(&mut mutated.lab()),
            "mutating knob #{} by {} must move the universe: {:?}",
            which, delta, base
        );
    }

    #[test]
    fn byte_irrelevant_state_shares_the_universe(base in knob_strategy(), jobs in 1usize..8) {
        // Job count and spec identity shape *scheduling*, not cell
        // bytes — both are deliberately outside the cache universe.
        let plain = universe_of(&mut base.lab());
        prop_assert_eq!(
            universe_of(&mut base.lab().with_jobs(Some(jobs))),
            plain.clone()
        );
        let mut tagged = base.lab().with_spec_fingerprint(Some(format!("spec-{jobs}")));
        prop_assert_eq!(universe_of(&mut tagged), plain);
    }

    #[test]
    fn cosmetic_spec_edits_preserve_universe_and_cell_keys(
        positions in prop::collection::vec((0usize..8, 0usize..3), 1..6),
    ) {
        // Sprinkle comments, blank lines and trailing whitespace over
        // the committed fig2 spec: parse-equivalent text must yield
        // the same spec fingerprint, the same lowered universe and the
        // same content-addressed cell keys.
        let pristine = std::fs::read_to_string(
            smtsim_bench::spec_dir().join("fig2.toml"),
        ).expect("fig2.toml is committed");
        let mut lines: Vec<String> = pristine.lines().map(str::to_string).collect();
        for &(pos, kind) in &positions {
            let at = pos.min(lines.len());
            match kind {
                0 => lines.insert(at, "# a cosmetic comment".into()),
                1 => lines.insert(at, String::new()),
                _ => lines.push("# trailing note".into()),
            }
        }
        let edited = format!("{}\n", lines.join("\n"));
        prop_assume!(edited != pristine);

        let spec = ExperimentSpec::parse("fig2.toml", &pristine).unwrap();
        let same = ExperimentSpec::parse("fig2.toml", &edited)
            .expect("cosmetic edits must still parse");
        prop_assert_eq!(&same.fingerprint, &spec.fingerprint);

        let lowering = EnvLowering { env: BenchEnv::from_env().unwrap() };
        let (mut lab_a, mixes_a) = lowering.lower(&spec).unwrap();
        let (mut lab_b, mixes_b) = lowering.lower(&same).unwrap();
        prop_assert_eq!(universe_of(&mut lab_a), universe_of(&mut lab_b));
        prop_assert_eq!(&mixes_a, &mixes_b);
        for (va, vb) in spec.variants.iter().zip(&same.variants) {
            for &mix in &mixes_a {
                prop_assert_eq!(
                    cell_key(mix, &va.config.fingerprint()),
                    cell_key(mix, &vb.config.fingerprint())
                );
            }
        }
    }

    #[test]
    fn spec_knob_edits_move_the_lowered_universe(extra in 1u64..500) {
        // A [knobs] edit that changes cell bytes must move the
        // universe the daemon caches under, even though the spec id is
        // unchanged.
        let spec_with = |budget: u64| -> ExperimentSpec {
            ExperimentSpec::parse(
                "t.toml",
                &format!(
                    "[experiment]\nid = \"t\"\ntitle = \"T\"\nkind = \"figure\"\n\
                     norm = \"baseline-32\"\nschemes = [\"baseline-32\"]\nmixes = [1]\n\n\
                     [knobs]\nbudget = {budget}\nwarmup = 500\n"
                ),
            )
            .unwrap()
        };
        let lowering = smtsim_serve::PlainLowering::default();
        let (mut lab_a, _) = lowering.lower(&spec_with(2_000)).unwrap();
        let (mut lab_b, _) = lowering.lower(&spec_with(2_000 + extra)).unwrap();
        prop_assert_ne!(universe_of(&mut lab_a), universe_of(&mut lab_b));
    }
}
