//! Reproducibility: every simulation is a pure function of
//! `(configuration, workload seed)` — DESIGN.md §8.

use smtsim_pipeline::{FixedRob, MachineConfig, Simulator, StopCondition};
use smtsim_rob2::{Lab, RobConfig, TwoLevelConfig};
use smtsim_workload::mix;
use std::sync::Arc;

/// A digest of everything observable about a run.
fn fingerprint(seed: u64, two_level: bool) -> Vec<u64> {
    let wls = mix(3).instantiate(seed).into_iter().map(Arc::new).collect();
    let alloc: Box<dyn smtsim_pipeline::RobAllocator> = if two_level {
        Box::new(smtsim_rob2::TwoLevelRob::new(TwoLevelConfig::cdr_rob(15)))
    } else {
        Box::new(FixedRob::new(32))
    };
    let mut sim = Simulator::new(MachineConfig::icpp08(), wls, alloc, seed);
    sim.warmup(20_000);
    sim.run(StopCondition::AnyThreadCommitted(8_000));
    let mut v = vec![sim.cycle()];
    for t in sim.stats().threads.iter() {
        v.extend([
            t.committed,
            t.fetched,
            t.issued,
            t.squashed,
            t.mispredicts,
            t.l2_misses,
            t.forwarded_loads,
        ]);
    }
    v.push(sim.stats().iq_occupancy_sum);
    v.push(sim.stats().dod_at_fill.sum);
    v
}

#[test]
fn baseline_runs_are_bit_identical() {
    assert_eq!(fingerprint(42, false), fingerprint(42, false));
}

#[test]
fn two_level_runs_are_bit_identical() {
    assert_eq!(fingerprint(42, true), fingerprint(42, true));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(fingerprint(1, false), fingerprint(2, false));
}

#[test]
fn lab_results_are_reproducible() {
    let run = || {
        let mut lab = Lab::new(17).with_budgets(6_000, 6_000);
        lab.warmup = 10_000;
        let r = lab.run_mix(6, RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)));
        (r.ft, r.ipc.clone(), r.twolevel.unwrap().allocations)
    };
    assert_eq!(run(), run());
}

#[test]
fn workload_generation_is_platform_independent_constants() {
    // Pin a few generator outputs: if these change, every recorded
    // experiment in EXPERIMENTS.md is invalidated, so fail loudly.
    let wl = smtsim_workload::Workload::spec("art", 42, 0x1_0000, 0x1000_0000);
    let a = (wl.program.num_insts(), wl.static_loads, wl.static_missing_loads);
    let wl2 = smtsim_workload::Workload::spec("art", 42, 0x1_0000, 0x1000_0000);
    let b = (wl2.program.num_insts(), wl2.static_loads, wl2.static_missing_loads);
    assert_eq!(a, b);
}
