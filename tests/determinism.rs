//! Reproducibility: every simulation is a pure function of
//! `(configuration, workload seed)` — DESIGN.md §8.

use smtsim_pipeline::{FaultPlan, FixedRob, MachineConfig, SimError, Simulator, StopCondition};
use smtsim_rob2::{Lab, RobConfig, TwoLevelConfig};
use smtsim_workload::mix;
use std::sync::Arc;

/// A digest of everything observable about a run.
fn fingerprint(seed: u64, two_level: bool) -> Vec<u64> {
    let wls = mix(3).instantiate(seed).into_iter().map(Arc::new).collect();
    let alloc: Box<dyn smtsim_pipeline::RobAllocator> = if two_level {
        Box::new(smtsim_rob2::TwoLevelRob::new(TwoLevelConfig::cdr_rob(15)))
    } else {
        Box::new(FixedRob::new(32))
    };
    let mut sim = Simulator::builder(MachineConfig::icpp08(), wls, alloc, seed)
        .warmup(20_000)
        .build()
        .expect("Table 1 config is valid");
    sim.run(StopCondition::AnyThreadCommitted(8_000));
    let mut v = vec![sim.cycle()];
    for t in &sim.stats().threads {
        v.extend([
            t.committed,
            t.fetched,
            t.issued,
            t.squashed,
            t.mispredicts,
            t.l2_misses,
            t.forwarded_loads,
        ]);
    }
    v.push(sim.stats().iq_occupancy_sum);
    v.push(sim.stats().dod_at_fill.sum);
    v
}

#[test]
fn baseline_runs_are_bit_identical() {
    assert_eq!(fingerprint(42, false), fingerprint(42, false));
}

#[test]
fn two_level_runs_are_bit_identical() {
    assert_eq!(fingerprint(42, true), fingerprint(42, true));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(fingerprint(1, false), fingerprint(2, false));
}

#[test]
fn sweep_is_byte_identical_at_any_job_count() {
    // The parallel sweep engine is defined to produce the serial
    // result: identical MixRun vectors (full-precision Debug digest)
    // and identical rendered figure text at every job count.
    let cells = [
        (2, RobConfig::Baseline(32)),
        (6, RobConfig::TwoLevel(TwoLevelConfig::r_rob(16))),
        (2, RobConfig::TwoLevel(TwoLevelConfig::p_rob(5))),
    ];
    let run = |jobs: usize| {
        let mut lab = Lab::new(17)
            .with_budgets(6_000, 6_000)
            .with_warmup(10_000)
            .with_jobs(Some(jobs));
        let runs = format!("{:?}", lab.sweep(&cells));
        let fig = smtsim_rob2::figures::fig2(&mut lab, &[2, 6]);
        (runs, smtsim_rob2::report::render_figure(&fig))
    };
    let serial = run(1);
    assert_eq!(serial, run(2));
    assert_eq!(serial, run(4));
}

#[test]
fn lab_results_are_reproducible() {
    let run = || {
        let mut lab = Lab::new(17).with_budgets(6_000, 6_000).with_warmup(10_000);
        let r = lab.run_mix(6, RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)));
        (r.ft, r.ipc.clone(), r.twolevel.unwrap().allocations)
    };
    assert_eq!(run(), run());
}

/// Runs Mix 2 under `plan` and digests everything observable: the
/// typed outcome, the cycle count, per-thread stats and the fired-fault
/// counters.
fn faulted_fingerprint(
    plan: &FaultPlan,
) -> (
    Result<(), SimError>,
    u64,
    Vec<u64>,
    smtsim_pipeline::FaultStats,
) {
    let mut cfg = MachineConfig::icpp08();
    cfg.deadlock_cycles = 3_000;
    cfg.invariant_interval = 250;
    let wls = mix(2).instantiate(9).into_iter().map(Arc::new).collect();
    let mut sim = Simulator::builder(cfg, wls, Box::new(FixedRob::new(32)), 9)
        .fault_plan(plan.clone())
        .build()
        .expect("valid config");
    let res = sim
        .try_run(StopCondition::AnyThreadCommitted(5_000))
        .map(|_| ());
    let mut v = Vec::new();
    for t in &sim.stats().threads {
        v.extend([t.committed, t.fetched, t.issued, t.squashed, t.l2_misses]);
    }
    (res, sim.cycle(), v, sim.fault_stats())
}

#[test]
fn benign_fault_plans_reproduce_identical_stats() {
    let plan = FaultPlan {
        seed: 5,
        delay_fill: 2,
        delay_cycles: 350,
        corrupt_dod: 3,
        ..FaultPlan::default()
    };
    let a = faulted_fingerprint(&plan);
    assert!(a.0.is_ok(), "delays and noise must be absorbed: {:?}", a.0);
    assert!(a.3.total() > 0, "plan never fired");
    assert_eq!(a, faulted_fingerprint(&plan));
}

#[test]
fn fatal_fault_plans_reproduce_identical_errors() {
    let plan = FaultPlan {
        seed: 5,
        drop_fill: 1,
        ..FaultPlan::default()
    };
    let a = faulted_fingerprint(&plan);
    let b = faulted_fingerprint(&plan);
    // Same seed + same plan ⇒ the same typed error with the same
    // snapshot, at the same cycle, with identical statistics.
    assert!(matches!(a.0, Err(SimError::Deadlock { .. })), "{:?}", a.0);
    assert!(a.3.dropped_fills > 0, "plan never fired");
    assert_eq!(a, b);
}

#[test]
fn workload_generation_is_platform_independent_constants() {
    // Pin a few generator outputs: if these change, every recorded
    // experiment in EXPERIMENTS.md is invalidated, so fail loudly.
    let wl = smtsim_workload::Workload::spec("art", 42, 0x1_0000, 0x1000_0000);
    let a = (
        wl.program.num_insts(),
        wl.static_loads,
        wl.static_missing_loads,
    );
    let wl2 = smtsim_workload::Workload::spec("art", 42, 0x1_0000, 0x1000_0000);
    let b = (
        wl2.program.num_insts(),
        wl2.static_loads,
        wl2.static_missing_loads,
    );
    assert_eq!(a, b);
}
