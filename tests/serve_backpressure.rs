//! Backpressure and cancellation semantics of the serve daemon
//! (DESIGN.md §17), exercised in-process: a full admission queue
//! answers a typed *retryable* rejection without blocking the accept
//! loop (metrics probes stay live throughout), and a client that
//! disconnects mid-stream has its queued cells cancelled and counted.

use smtsim_serve::{ServeConfig, Server, SpecLowering};
use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A one-cell figure spec small enough to finish in milliseconds.
const TINY_SPEC: &str = "\
[experiment]
id = \"tiny\"
title = \"Tiny\"
kind = \"figure\"
norm = \"baseline-32\"
schemes = [\"baseline-32\"]
mixes = [1]

[knobs]
budget = 2000
warmup = 500
";

/// A wider matrix for the cancellation test: enough cells that most
/// are still queued on one worker when the client walks away.
const WIDE_SPEC: &str = "\
[experiment]
id = \"wide\"
title = \"Wide\"
kind = \"figure\"
norm = \"baseline-32\"
schemes = [\"baseline-32\", \"baseline-128\", \"r-rob-16\", \"p-rob-5\"]
mixes = [1, 2, 9]

[knobs]
budget = 30000
warmup = 1000
";

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "smtsim-serve-backpressure-{tag}-{}",
        std::process::id()
    ))
}

fn config(tag: &str, queue_limit: usize) -> ServeConfig {
    let dir = scratch(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    ServeConfig {
        socket: dir.join("serve.sock"),
        cache_dir: dir.join("cache"),
        queue_limit,
        workers: 1,
        spec_dir: None,
    }
}

/// [`SpecLowering`] that stalls before delegating — holds its admission
/// slot long enough for the queue-full path to be observable.
struct SlowLowering {
    inner: smtsim_serve::PlainLowering,
    delay: Duration,
}

impl SpecLowering for SlowLowering {
    fn lower(
        &self,
        spec: &smtsim_rob2::ExperimentSpec,
    ) -> Result<(smtsim_rob2::Lab, Vec<usize>), String> {
        std::thread::sleep(self.delay);
        self.inner.lower(spec)
    }
}

fn submit_line(toml: &str) -> String {
    format!(
        "{{\"op\":\"submit\",\"spec_toml\":{}}}",
        smtsim_rob2::journal::json_string(toml)
    )
}

fn exchange(socket: &Path, request: &str) -> Vec<String> {
    let mut stream = UnixStream::connect(socket).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    BufReader::new(stream)
        .lines()
        .collect::<Result<_, _>>()
        .unwrap()
}

fn field(line: &str, name: &str) -> Option<String> {
    smtsim_rob2::journal::parse_json(line)
        .ok()?
        .get(name)
        .and_then(smtsim_rob2::journal::Json::as_str)
        .map(str::to_string)
}

fn field_u64(line: &str, name: &str) -> Option<u64> {
    smtsim_rob2::journal::parse_json(line)
        .ok()?
        .get(name)
        .and_then(smtsim_rob2::journal::Json::as_u64)
}

#[test]
fn full_queue_rejects_retryable_while_the_accept_loop_stays_live() {
    let delay = Duration::from_millis(1_500);
    let server = Server::start(
        config("queue", 1),
        Box::new(SlowLowering {
            inner: smtsim_serve::PlainLowering::default(),
            delay,
        }),
    )
    .unwrap();
    let socket = server.socket().to_path_buf();

    // Client 1 takes the single admission slot and sits in the slow
    // lowering stage.
    let slow_socket = socket.clone();
    let slow = std::thread::spawn(move || exchange(&slow_socket, &submit_line(TINY_SPEC)));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = exchange(&socket, "{\"op\":\"metrics\"}");
        if field_u64(metrics.last().unwrap(), "active_requests") == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "first request never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Client 2 must be bounced immediately — typed, retryable, and
    // far faster than the slow request it would otherwise wait on.
    let t0 = Instant::now();
    let bounced = exchange(&socket, &submit_line(TINY_SPEC));
    let elapsed = t0.elapsed();
    let last = bounced.last().expect("a rejection line");
    assert_eq!(field(last, "type").as_deref(), Some("error"), "{last}");
    assert_eq!(field(last, "kind").as_deref(), Some("queue-full"), "{last}");
    assert!(last.contains("\"retryable\":true"), "{last}");
    assert!(
        elapsed < delay,
        "rejection must not queue behind the admitted request ({elapsed:?})"
    );

    // The accept loop stays responsive under saturation: a metrics
    // probe answers while the slow request still holds the slot.
    let t0 = Instant::now();
    let metrics = exchange(&socket, "{\"op\":\"metrics\"}");
    assert_eq!(
        field(metrics.last().unwrap(), "type").as_deref(),
        Some("metrics")
    );
    assert!(t0.elapsed() < delay, "metrics must not queue either");

    // The admitted request still completes normally.
    let slow_lines = slow.join().unwrap();
    assert_eq!(
        field(slow_lines.last().unwrap(), "type").as_deref(),
        Some("done"),
        "admitted request must finish: {:?}",
        slow_lines.last()
    );
    assert!(server.counter("serve.queue_rejections") >= 1);
    server.shutdown();
}

#[test]
fn client_disconnect_cancels_its_queued_cells() {
    let server = Server::start(
        config("cancel", 4),
        Box::new(smtsim_serve::PlainLowering::default()),
    )
    .unwrap();
    let socket = server.socket().to_path_buf();

    // Submit a 12-cell request on a 1-worker pool, read the accepted
    // line, then vanish.
    {
        let mut stream = UnixStream::connect(&socket).unwrap();
        stream
            .write_all(format!("{}\n", submit_line(WIDE_SPEC)).as_bytes())
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut accepted = String::new();
        assert!(reader.read_line(&mut accepted).unwrap() > 0);
        assert_eq!(
            field(&accepted, "type").as_deref(),
            Some("accepted"),
            "{accepted}"
        );
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }

    // The disconnect watcher fires on EOF; queued cells resolve as
    // cancelled without being computed. Poll briefly — cancellation is
    // bounded by one watchdog poll of the in-flight cell.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.counter("serve.cells_cancelled") == 0
        || server.counter("serve.requests_cancelled") == 0
    {
        assert!(
            Instant::now() < deadline,
            "disconnect never cancelled the request (cancelled cells: {}, requests: {})",
            server.counter("serve.cells_cancelled"),
            server.counter("serve.requests_cancelled")
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        server.counter("serve.cells_run") + server.counter("serve.cells_cancelled") >= 12 - 1,
        "every cell must resolve as run or cancelled"
    );

    // The daemon is healthy afterwards: a fresh tiny request completes.
    let lines = exchange(&socket, &submit_line(TINY_SPEC));
    assert_eq!(
        field(lines.last().unwrap(), "type").as_deref(),
        Some("done"),
        "{:?}",
        lines.last()
    );
    server.shutdown();
}
