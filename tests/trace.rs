//! Observability acceptance: the traced sweep is deterministic at any
//! job count, and the reconstructed episodes agree with the
//! simulator's own counters — DESIGN.md §Observability.

use smtsim_obs::{episodes_jsonl, trace_jsonl, DenyReason, DodSource, TraceEvent};
use smtsim_rob2::{Lab, RobConfig, TracedMixRun, TwoLevelConfig};

/// One traced memory-bound cell at reduced budgets.
fn traced_cell(mix: usize) -> TracedMixRun {
    let mut lab = Lab::new(17).with_budgets(6_000, 6_000).with_warmup(10_000);
    let cfg = RobConfig::TwoLevel(TwoLevelConfig::r_rob(16));
    let cells = [(mix, cfg)];
    let mut results = lab.sweep_traced(&cells);
    results
        .pop()
        .expect("one cell in, one result out")
        .expect("reduced-budget cell runs clean")
}

#[test]
fn traced_sweep_is_byte_identical_at_any_job_count() {
    // The JSONL dump the `trace` bin writes is a pure function of
    // (cells, seed, budgets): the parallel fan-out must not be able to
    // reorder a single line of it.
    let cells = [
        (1, RobConfig::Baseline(32)),
        (1, RobConfig::TwoLevel(TwoLevelConfig::r_rob(16))),
        (9, RobConfig::TwoLevel(TwoLevelConfig::cdr_rob(15))),
    ];
    let dump = |jobs: usize| -> String {
        let mut lab = Lab::new(17)
            .with_budgets(6_000, 6_000)
            .with_warmup(10_000)
            .with_jobs(Some(jobs));
        lab.sweep_traced(&cells)
            .iter()
            .map(|r| {
                let t = r.as_ref().expect("reduced-budget cells run clean");
                format!("{}{}", trace_jsonl(&t.events), episodes_jsonl(&t.episodes))
            })
            .collect()
    };
    let serial = dump(1);
    assert!(!serial.is_empty());
    assert_eq!(serial, dump(4), "traced sweep must not depend on jobs");
}

#[test]
fn every_allocation_is_accounted() {
    // Event stream, episode reconstruction and the allocator's own
    // statistics are three views of the same run; they must agree
    // exactly (the one tenure possibly still live at the stop cycle is
    // the only permitted allocate/release gap).
    let traced = traced_cell(1);
    let tl = traced.run.twolevel.expect("two-level cell");

    let mut allocated = 0u64;
    let mut released = 0u64;
    let mut denied_busy = 0u64;
    let mut denied_dod = 0u64;
    for (_, ev) in &traced.events {
        match ev {
            TraceEvent::L2RobAllocated { .. } => allocated += 1,
            TraceEvent::L2RobReleased { .. } => released += 1,
            TraceEvent::L2RobDenied { reason, .. } => match reason {
                DenyReason::Busy => denied_busy += 1,
                DenyReason::HighDod => denied_dod += 1,
                DenyReason::ColdPredictor => {}
            },
            _ => {}
        }
    }
    assert!(allocated > 0, "mix 1 is memory-bound: expect allocations");
    assert_eq!(allocated, tl.allocations, "allocate events vs stats");
    assert_eq!(released, tl.releases, "release events vs stats");
    assert_eq!(denied_busy, tl.rejected_busy, "busy denials vs stats");
    assert_eq!(denied_dod, tl.rejected_dod, "DoD denials vs stats");
    assert!(
        allocated - released <= 1,
        "at most one tenure live at the stop cycle"
    );

    // The reconstructor must account for every grant and release.
    let ep_allocated = traced.episodes.iter().filter(|e| e.allocated()).count() as u64;
    let ep_released = traced
        .episodes
        .iter()
        .filter(|e| e.released_at.is_some())
        .count() as u64;
    assert_eq!(ep_allocated, tl.allocations, "episodes vs allocations");
    assert_eq!(ep_released, tl.releases, "episodes vs releases");
}

#[test]
fn episode_dod_agrees_with_the_static_oracle() {
    // `DodSampled(CounterAtFill)` carries the same pre-fault counter
    // value `oracle_check` audits, so the event stream must cover
    // exactly the oracle's checked fills and its value sum must sit
    // within the oracle's accumulated |counter - exact| error of the
    // exact-dependent sum.
    let traced = traced_cell(1);
    let oracle = traced.run.stats.dod_oracle;
    assert!(oracle.checked > 0, "static bounds are installed by the Lab");

    let fill_samples: Vec<u64> = traced
        .events
        .iter()
        .filter_map(|(_, ev)| match ev {
            TraceEvent::DodSampled {
                value,
                source: DodSource::CounterAtFill,
                ..
            } => Some(u64::from(*value)),
            _ => None,
        })
        .collect();
    assert_eq!(
        fill_samples.len() as u64,
        oracle.checked,
        "one fill-time sample per oracle-checked fill"
    );
    let sampled_sum: u64 = fill_samples.iter().sum();
    assert!(
        sampled_sum.abs_diff(oracle.exact_sum) <= oracle.counter_err_sum,
        "counter sum {sampled_sum} vs exact sum {} exceeds accumulated \
         counter error {}",
        oracle.exact_sum,
        oracle.counter_err_sum
    );

    // The per-episode view carries the same values: fold them back and
    // compare against the raw event stream.
    let ep_samples: Vec<u64> = traced
        .episodes
        .iter()
        .filter_map(|e| e.dod_at_fill.map(u64::from))
        .collect();
    assert_eq!(ep_samples.len(), fill_samples.len());
    assert_eq!(ep_samples.iter().sum::<u64>(), sampled_sum);
}
