//! Integration tests spanning the full crate stack: workload generation
//! → functional execution → pipeline → two-level ROB → metrics.

use smtsim_pipeline::{FixedRob, MachineConfig, Simulator, StopCondition};
use smtsim_rob2::{Lab, RobConfig, TwoLevelConfig, TwoLevelRob};
use smtsim_workload::{mix, paper_mixes, Workload};
use std::sync::Arc;

#[test]
fn every_table2_mix_runs_under_every_scheme() {
    // Smoke coverage of the full matrix at a small budget: all 11 mixes
    // × {baseline, one reactive, one predictive}.
    let mut lab = Lab::new(7).with_budgets(2_500, 2_500);
    lab.warmup = 5_000;
    for m in 1..=11 {
        for cfg in [
            RobConfig::Baseline(32),
            RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)),
            RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)),
        ] {
            let r = lab.run_mix(m, cfg);
            assert!(r.ft > 0.0, "{} under {} yielded zero FT", r.mix, r.config);
            assert_eq!(r.ipc.len(), 4);
            assert!(
                r.stats.total_committed() >= 4 * 2_500 / 4,
                "{} {} barely committed",
                r.mix,
                r.config
            );
        }
    }
}

#[test]
fn two_level_allocator_observes_pipeline_reality() {
    // End-to-end: the allocator's statistics must be consistent with
    // the pipeline's (allocations only happen when misses exist; the
    // partition is held while allocated).
    let mut lab = Lab::new(11).with_budgets(15_000, 15_000);
    let r = lab.run_mix(1, RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)));
    let tl = r.twolevel.expect("two-level stats");
    let total_misses: u64 = r.stats.threads.iter().map(|t| t.l2_misses).sum();
    assert!(tl.allocations > 0, "memory-bound mix must allocate");
    assert!(
        tl.allocations <= total_misses,
        "cannot allocate more often than misses occur"
    );
    assert!(tl.held_cycles <= r.stats.cycles);
    assert!(tl.releases <= tl.allocations);
    assert!(tl.allocations <= tl.releases + 1, "at most one live tenure");
}

#[test]
fn single_threaded_two_level_machine_works() {
    // The allocator must also be sound with one hardware thread (the
    // normalization configuration).
    let cfg = MachineConfig::icpp08_single();
    let wl = Arc::new(mix(1).instantiate_single(1, 3));
    let mut sim = Simulator::builder(
        cfg,
        vec![wl],
        Box::new(TwoLevelRob::new(TwoLevelConfig::r_rob(16))),
        3,
    )
    .warmup(20_000)
    .build()
    .expect("single-thread config is valid");
    let stats = sim.run(StopCondition::AnyThreadCommitted(10_000));
    assert!(stats.threads[0].committed >= 10_000);
}

#[test]
fn workload_statistics_flow_into_simulation() {
    // A workload that declares missing loads must actually produce L2
    // misses when simulated, and one that declares none must not
    // (beyond the cold/warm-up residue).
    let missing = Arc::new(Workload::spec("art", 5, 0x1_0000, 0x1000_0000));
    assert!(missing.static_missing_loads > 0);
    let clean = Arc::new(Workload::spec("swim", 5, 0x1_0000, 0x1000_0000));

    let run = |wl: Arc<Workload>| {
        let cfg = MachineConfig::icpp08_single();
        let mut sim = Simulator::builder(cfg, vec![wl], Box::new(FixedRob::new(32)), 5)
            .warmup(40_000)
            .build()
            .expect("single-thread config is valid");
        sim.run(StopCondition::AnyThreadCommitted(20_000));
        sim.stats().threads[0].l2_misses
    };
    let art = run(missing);
    let swim = run(clean);
    assert!(art > 200, "art must miss heavily: {art}");
    assert!(
        swim < art / 5,
        "swim ({swim}) must miss far less than art ({art})"
    );
}

#[test]
fn mix_metadata_matches_workloads() {
    for m in paper_mixes() {
        let wls = m.instantiate(9);
        assert_eq!(wls.len(), 4);
        for (i, wl) in wls.iter().enumerate() {
            assert_eq!(wl.profile.name, m.benchmarks[i]);
        }
    }
}

#[test]
fn weighted_ipc_is_internally_consistent() {
    let mut lab = Lab::new(13).with_budgets(8_000, 8_000);
    let r = lab.run_mix(2, RobConfig::Baseline(32));
    for slot in 0..4 {
        let w = r.ipc[slot] / r.single_ipc[slot];
        assert!((w - r.weighted[slot]).abs() < 1e-9);
    }
    let hm = smtsim_rob2::harmonic_mean(&r.weighted);
    assert!((hm - r.ft).abs() < 1e-12);
}
