//! Fault-injection regression suite: every injected fault surfaces as
//! either graceful degradation or a typed [`SimError`] — never a
//! process abort. See DESIGN.md "Failure model & fault injection".

use smtsim_pipeline::{
    FaultPlan, FixedRob, MachineConfig, RobAllocator, SimError, Simulator, StopCondition,
};
use smtsim_rob2::{TwoLevelConfig, TwoLevelRob};
use smtsim_workload::mix;
use std::sync::Arc;

/// Four-thread Table 1 machine over memory-bound Mix 1 with the given
/// allocator, fault plan and integrity knobs.
fn faulted_sim(
    alloc: Box<dyn RobAllocator>,
    plan: FaultPlan,
    deadlock_cycles: u64,
    invariant_interval: u64,
) -> Simulator {
    let mut cfg = MachineConfig::icpp08();
    cfg.deadlock_cycles = deadlock_cycles;
    cfg.invariant_interval = invariant_interval;
    let wls = mix(1).instantiate(7).into_iter().map(Arc::new).collect();
    Simulator::builder(cfg, wls, alloc, 7)
        .fault_plan(plan)
        .build()
        .expect("Table 1 config is valid")
}

#[test]
fn starved_config_surfaces_deadlock_with_populated_snapshot() {
    // Total allocation starvation from cycle 0: dispatch sees zero ROB
    // capacity everywhere, so nothing ever commits.
    let plan = FaultPlan {
        capacity_zero_after: Some(0),
        ..FaultPlan::default()
    };
    let mut sim = faulted_sim(Box::new(FixedRob::new(32)), plan, 2_500, 0);
    let err = sim
        .try_run(StopCondition::AnyThreadCommitted(5_000))
        .expect_err("a fully starved machine must deadlock");
    let SimError::Deadlock { snapshot } = err else {
        panic!("expected a deadlock, got {err}");
    };
    assert_eq!(snapshot.deadlock_cycles, 2_500);
    assert!(snapshot.now >= 2_500);
    assert_eq!(snapshot.threads.len(), 4);
    for (t, th) in snapshot.threads.iter().enumerate() {
        assert_eq!(th.rob_len, 0, "t{t} dispatched into a zero-capacity ROB");
    }
    let msg = snapshot.to_string();
    assert!(msg.contains("deadlock: no commit for 2500 cycles"), "{msg}");
}

#[test]
fn withheld_l2_release_is_caught_by_watchdog_as_typed_error() {
    // Drop every L2 fill: the miss data (and with it the release the
    // two-level allocator waits on) is withheld from the core forever.
    // The oldest load can never execute, commit stops machine-wide, and
    // the watchdog must turn that into a typed error — not an abort.
    let plan = FaultPlan {
        seed: 13,
        drop_fill: 1,
        ..FaultPlan::default()
    };
    let mut sim = faulted_sim(
        Box::new(TwoLevelRob::new(TwoLevelConfig::r_rob(16))),
        plan,
        3_000,
        0,
    );
    let err = sim
        .try_run(StopCondition::AnyThreadCommitted(8_000))
        .expect_err("dropped fills starve every thread");
    assert_eq!(err.kind(), "deadlock");
    assert!(sim.fault_stats().dropped_fills > 0, "plan never fired");
    let SimError::Deadlock { snapshot } = err else {
        panic!("expected a deadlock, got {err}");
    };
    assert_eq!(snapshot.policy, "2-Level R-ROB16");
    assert!(
        snapshot.threads.iter().any(|t| t.pending_l2 > 0),
        "snapshot must show the unfilled misses"
    );
}

#[test]
fn withheld_allocator_notification_degrades_gracefully() {
    // Suppress every on_l2_fill upcall: the allocator never hears that
    // a trigger was serviced. TriggerServiced tenure must still rotate
    // via its in-flight fallback — the run completes and the second
    // level is not held captive.
    let plan = FaultPlan {
        seed: 17,
        withhold_release: 1,
        ..FaultPlan::default()
    };
    let mut sim = faulted_sim(
        Box::new(TwoLevelRob::new(TwoLevelConfig::r_rob(16))),
        plan,
        50_000,
        500,
    );
    sim.try_run(StopCondition::AnyThreadCommitted(6_000))
        .expect("withheld notifications must be absorbed, not fatal");
    assert!(sim.fault_stats().withheld_releases > 0, "plan never fired");
    let tl = sim
        .allocator()
        .as_any()
        .downcast_ref::<TwoLevelRob>()
        .expect("two-level allocator")
        .stats();
    assert!(tl.allocations > 0, "memory-bound mix must allocate");
    assert!(
        tl.releases > 0,
        "tenure must rotate via the in-flight fallback"
    );
}

#[test]
fn capacity_lie_is_caught_by_the_invariant_checker() {
    // A stuck-at-maximum capacity grant: after the two-level policy
    // revokes the second level, dispatch keeps seeing the extended
    // grant and oversubscribes. The conservation check / policy audit
    // must catch it as a typed invariant violation.
    let plan = FaultPlan {
        seed: 23,
        capacity_latch: true,
        ..FaultPlan::default()
    };
    let mut sim = faulted_sim(
        Box::new(TwoLevelRob::new(TwoLevelConfig::r_rob(16))),
        plan,
        200_000,
        100,
    );
    let err = sim
        .try_run(StopCondition::AnyThreadCommitted(60_000))
        .expect_err("the capacity lie must be detected");
    let SimError::InvariantViolation { cycle, detail } = err else {
        panic!("expected an invariant violation, got {err}");
    };
    assert!(cycle > 0);
    assert!(
        detail.contains("occupancy") || detail.contains("conservation"),
        "detail: {detail}"
    );
}

#[test]
fn corrupted_dod_counts_only_add_noise() {
    // Garbled DoD counts reach the predictor/policy: accuracy may
    // suffer but the run must stay healthy and deterministic.
    let plan = FaultPlan {
        seed: 29,
        corrupt_dod: 1,
        ..FaultPlan::default()
    };
    let run = || {
        let mut sim = faulted_sim(
            Box::new(TwoLevelRob::new(TwoLevelConfig::p_rob(5))),
            plan.clone(),
            50_000,
            0,
        );
        sim.try_run(StopCondition::AnyThreadCommitted(5_000))
            .expect("corrupted counts are noise, not failures");
        (
            sim.cycle(),
            sim.stats().total_committed(),
            sim.fault_stats(),
        )
    };
    let (cycles, committed, faults) = run();
    assert!(committed >= 5_000);
    assert!(faults.corrupted_dod > 0, "plan never fired");
    assert_eq!((cycles, committed, faults), run(), "noise must be seeded");
}

#[test]
fn invalid_workload_set_is_a_typed_config_error() {
    let cfg = MachineConfig::icpp08(); // expects 4 threads
    let wls = vec![Arc::new(smtsim_workload::Workload::spec(
        "art",
        1,
        0x1_0000,
        0x1000_0000,
    ))];
    let err = Simulator::try_new(cfg, wls, Box::new(FixedRob::new(32)), 1)
        .err()
        .expect("workload/thread mismatch must be rejected");
    assert_eq!(err.kind(), "invalid-config");
}
