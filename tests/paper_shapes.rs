//! The paper's qualitative results, asserted as tests. These are the
//! reproduction's success criteria (DESIGN.md §5): the *shape* of every
//! headline claim must hold at laptop-scale budgets.

use smtsim_rob2::{figures, Lab, RobConfig, TwoLevelConfig};

/// Memory-bound mixes, where the mechanism is designed to win.
const MEMORY_MIXES: [usize; 4] = [1, 3, 5, 9];

fn lab() -> Lab {
    let mut lab = Lab::new(42).with_budgets(25_000, 25_000);
    lab.warmup = 60_000;
    lab
}

fn avg_ft(lab: &mut Lab, cfg: RobConfig, mixes: &[usize]) -> f64 {
    let s: f64 = mixes.iter().map(|&m| lab.run_mix(m, cfg).ft).sum();
    s / mixes.len() as f64
}

#[test]
fn baseline_128_underperforms_baseline_32() {
    // §5.2 / Figure 2: "the Baseline_128 configuration significantly
    // underperforms the Baseline_32 configuration due to the increased
    // pressure on the shared resources".
    let mut lab = lab();
    let b32 = avg_ft(&mut lab, RobConfig::Baseline(32), &MEMORY_MIXES);
    let b128 = avg_ft(&mut lab, RobConfig::Baseline(128), &MEMORY_MIXES);
    assert!(
        b128 < b32 * 0.95,
        "Baseline_128 ({b128:.4}) must lose to Baseline_32 ({b32:.4})"
    );
}

#[test]
fn reactive_two_level_beats_both_baselines() {
    // Figure 2's headline: 2-Level R-ROB16 above Baseline_32 and far
    // above Baseline_128 on memory-bound mixes.
    let mut lab = lab();
    let b32 = avg_ft(&mut lab, RobConfig::Baseline(32), &MEMORY_MIXES);
    let b128 = avg_ft(&mut lab, RobConfig::Baseline(128), &MEMORY_MIXES);
    let r16 = avg_ft(
        &mut lab,
        RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
        &MEMORY_MIXES,
    );
    assert!(
        r16 > b32,
        "R-ROB16 ({r16:.4}) must beat Baseline_32 ({b32:.4})"
    );
    assert!(
        r16 > b128 * 1.15,
        "R-ROB16 ({r16:.4}) must clearly beat Baseline_128 ({b128:.4})"
    );
}

#[test]
fn all_two_level_schemes_beat_baseline_on_memory_mixes() {
    // Figures 2/4/5/6: every scheme improves FT on the memory-bound
    // workloads it targets.
    let mut lab = lab();
    let b32 = avg_ft(&mut lab, RobConfig::Baseline(32), &MEMORY_MIXES);
    for cfg in [
        TwoLevelConfig::r_rob(16),
        TwoLevelConfig::relaxed_r_rob(15),
        TwoLevelConfig::cdr_rob(15),
        TwoLevelConfig::p_rob(5),
    ] {
        let ft = avg_ft(&mut lab, RobConfig::TwoLevel(cfg), &MEMORY_MIXES);
        assert!(
            ft > b32,
            "{:?} ({ft:.4}) must beat Baseline_32 ({b32:.4})",
            cfg.scheme
        );
    }
}

#[test]
fn high_ilp_mixes_are_not_harmed() {
    // The mechanism's defining property: memory-bound threads are
    // accelerated "without adversely impacting the performance of other
    // concurrently running applications". On the execution-bound mixes
    // (10, 11) the second level stays idle and FT is unchanged.
    let mut lab = lab();
    for m in [10usize, 11] {
        let base = lab.run_mix(m, RobConfig::Baseline(32));
        let two = lab.run_mix(m, RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)));
        assert!(
            two.ft >= base.ft * 0.97,
            "Mix {m}: two-level ({:.4}) must not hurt the baseline ({:.4})",
            two.ft,
            base.ft
        );
        let tl = two.twolevel.unwrap();
        assert!(
            tl.allocations <= 5,
            "Mix {m}: execution-bound threads should rarely qualify ({} allocations)",
            tl.allocations
        );
    }
}

#[test]
fn figure1_dod_distribution_is_small_and_skewed() {
    // Figure 1: "a typical number of load-dependent instructions is
    // fairly small for all simulated mixes".
    let mut lab = lab();
    let fig = figures::fig1(&mut lab, &[1, 2, 4]);
    for (name, h) in &fig.mixes {
        assert!(h.samples > 50, "{name}: too few fill samples");
        assert!(
            h.mean() < 16.0,
            "{name}: mean DoD {:.2} not small",
            h.mean()
        );
        // Right-skew: the lower half of the range holds most mass.
        let low: u64 = h.bins()[..16].iter().sum();
        assert!(
            low * 2 > h.samples,
            "{name}: distribution should be skewed toward small counts"
        );
    }
}

#[test]
fn deeper_windows_capture_more_dependents() {
    // Figures 3 and 7: the captured dependent count rises under the
    // two-level schemes (paper: +56 % reactive, +120 % predictive), and
    // the predictive scheme — which allocates earliest and overlaps the
    // most misses — captures at least as much as the reactive one.
    let mut lab = lab();
    let mixes = [1usize, 3, 4];
    let base = figures::fig1(&mut lab, &mixes).pooled_mean();
    let reactive = figures::fig3(&mut lab, &mixes).pooled_mean();
    let predictive = figures::fig7(&mut lab, &mixes).pooled_mean();
    assert!(
        reactive > base * 1.1,
        "R-ROB mean DoD ({reactive:.2}) must exceed baseline ({base:.2})"
    );
    assert!(
        predictive > base * 1.2,
        "P-ROB mean DoD ({predictive:.2}) must clearly exceed baseline ({base:.2})"
    );
}

#[test]
fn dod_threshold_matters() {
    // §5.2: the threshold is "pivotal in preventing the issue queue
    // clog" — a tiny threshold allocates rarely (few gains), so the
    // paper's threshold must beat it on memory-bound mixes.
    let mut lab = lab();
    let mixes = [1usize, 4];
    let t1 = avg_ft(
        &mut lab,
        RobConfig::TwoLevel(TwoLevelConfig::r_rob(1)),
        &mixes,
    );
    let t16 = avg_ft(
        &mut lab,
        RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
        &mixes,
    );
    assert!(
        t16 >= t1,
        "threshold 16 ({t16:.4}) should do at least as well as threshold 1 ({t1:.4})"
    );
}

#[test]
fn predictive_scheme_prediction_accuracy_is_high() {
    // §4.2: "for the same control flow path the number of
    // load-dependent instructions does not change", so the last-value
    // predictor should verify accurately.
    let mut lab = lab();
    let r = lab.run_mix(1, RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)));
    let tl = r.twolevel.unwrap();
    assert!(tl.pred_verified > 50, "need verified predictions");
    assert!(
        tl.prediction_accuracy() > 0.8,
        "last-value DoD accuracy {:.2} too low",
        tl.prediction_accuracy()
    );
}
