//! Quickstart: simulate one Table 2 mix on the paper's machine under
//! the baseline and the two-level ROB, and print the fair-throughput
//! comparison.
//!
//! ```sh
//! cargo run --release -p smtsim-rob2 --example quickstart
//! ```

use smtsim_rob2::{Lab, RobConfig, TwoLevelConfig};

fn main() {
    // A Lab wraps the Table 1 machine, the Table 2 workloads, the
    // warm-up pass, and the weighted-IPC bookkeeping. Budgets here are
    // small so the example finishes in seconds.
    let mut lab = Lab::new(42).with_budgets(20_000, 20_000);

    println!("machine: the paper's Table 1 configuration\n");

    // Mix 5 = ammp + apsi + parser + crafty: three memory-bound
    // threads plus one intermediate one — the contention pattern the
    // two-level ROB is designed for.
    let baseline = lab.run_mix(5, RobConfig::Baseline(32));
    let big = lab.run_mix(5, RobConfig::Baseline(128));
    let two_level = lab.run_mix(5, RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)));

    for run in [&baseline, &big, &two_level] {
        println!(
            "{:<24} FT = {:.4}   per-thread weighted IPC = {:?}",
            run.config,
            run.ft,
            run.weighted
                .iter()
                .map(|w| (w * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>(),
        );
    }

    println!();
    println!(
        "2-Level R-ROB16 vs Baseline_32:  {:+.1}%",
        (two_level.ft / baseline.ft - 1.0) * 100.0
    );
    println!(
        "Baseline_128    vs Baseline_32:  {:+.1}%   (bigger ROBs everywhere backfire)",
        (big.ft / baseline.ft - 1.0) * 100.0
    );

    if let Some(tl) = two_level.twolevel {
        println!(
            "\nsecond level: {} allocations, busy {:.0}% of cycles, {} rejected by the DoD threshold",
            tl.allocations,
            tl.held_cycles as f64 / two_level.stats.cycles as f64 * 100.0,
            tl.rejected_dod
        );
    }
}
