//! Fetch-policy face-off: the related-work policies of §2 — ICOUNT,
//! STALL, FLUSH, DCRA — against each other and combined with the
//! two-level ROB (the paper's baseline is DCRA).
//!
//! ```sh
//! cargo run --release -p smtsim-rob2 --example policy_faceoff -- 2
//! ```

use smtsim_pipeline::{DcraConfig, FetchPolicyKind};
use smtsim_rob2::{Lab, RobConfig, TwoLevelConfig};

fn main() {
    let mix_idx: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    if !(1..=11).contains(&mix_idx) {
        eprintln!("error: mix index {mix_idx} out of range 1..=11 (Table 2)");
        std::process::exit(2);
    }
    let budget: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25_000);

    let policies = [
        ("RoundRobin", FetchPolicyKind::RoundRobin),
        ("ICOUNT", FetchPolicyKind::Icount),
        ("STALL", FetchPolicyKind::Stall),
        ("FLUSH", FetchPolicyKind::Flush),
        ("DCRA", FetchPolicyKind::Dcra(DcraConfig::default())),
    ];

    println!("Mix {mix_idx}: fetch policies × ROB organizations\n");
    println!(
        "{:<12} {:>14} {:>18}",
        "policy", "Baseline_32 FT", "2-Level R-ROB16 FT"
    );
    for (name, policy) in policies {
        // Fresh lab per policy: single-thread normalization runs use
        // the same fetch policy as the multithreaded machine.
        let mut lab = Lab::new(42).with_budgets(budget, budget);
        lab.machine.fetch_policy = policy;
        let base = lab.run_mix(mix_idx, RobConfig::Baseline(32));
        let two = lab.run_mix(mix_idx, RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)));
        println!("{:<12} {:>14.4} {:>18.4}", name, base.ft, two.ft);
    }

    println!(
        "\nDCRA is the paper's baseline: it beats the stalling/flushing\n\
         policies by *helping* memory-bound threads instead of gating them,\n\
         and the two-level ROB adds its gains on top."
    );
}
