//! Degree-of-Dependence predictor study (§4.2 of the paper).
//!
//! Compares the three predictor designs — last-value, threshold-bit and
//! path-qualified — on real pipeline traffic: verified accuracy,
//! coverage, and the fair throughput each earns when driving the
//! predictive 2-Level P-ROB scheme.
//!
//! ```sh
//! cargo run --release -p smtsim-rob2 --example dod_predictor -- 1,3,9
//! ```

use smtsim_rob2::{DodPredictorKind, Lab, RobConfig, Scheme, TwoLevelConfig};

fn main() {
    let mixes: Vec<usize> = std::env::args().nth(1).map_or_else(
        || vec![1, 3, 9],
        |s| {
            s.split(',')
                .map(|x| x.parse().expect("mix index"))
                .collect()
        },
    );
    let mut lab = Lab::new(42).with_budgets(30_000, 30_000);

    println!("2-Level P-ROB5 with each §4.2 predictor design\n");
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "predictor", "mix", "FT", "accuracy", "coverage", "allocs"
    );

    for kind in [
        DodPredictorKind::LastValue,
        DodPredictorKind::ThresholdBit,
        DodPredictorKind::Path,
    ] {
        let mut cfg = TwoLevelConfig::p_rob(5);
        cfg.scheme = Scheme::Predictive { predictor: kind };
        for &m in &mixes {
            let r = lab.run_mix(m, RobConfig::TwoLevel(cfg));
            let tl = r.twolevel.expect("two-level stats");
            let coverage = if tl.pred_hits + tl.pred_cold == 0 {
                0.0
            } else {
                tl.pred_hits as f64 / (tl.pred_hits + tl.pred_cold) as f64
            };
            println!(
                "{:<16} {:>8} {:>10.4} {:>9.1}% {:>9.1}% {:>10}",
                format!("{kind:?}"),
                format!("Mix {m}"),
                r.ft,
                tl.prediction_accuracy() * 100.0,
                coverage * 100.0,
                tl.allocations
            );
        }
    }

    println!(
        "\nThe last-value predictor is the design the paper evaluates; the\n\
         path-qualified variant separates control-flow paths (\"predictions\n\
         will always be accurate\"), the threshold-bit variant stores a\n\
         single bit per entry."
    );
}
