//! Mix study: how one benchmark mix behaves under every ROB
//! configuration, with the per-thread breakdown the aggregate FT metric
//! hides — who holds the second level, who gets rejected, and what it
//! costs the co-runners.
//!
//! ```sh
//! cargo run --release -p smtsim-rob2 --example mix_study -- 5 30000
//! ```
//!
//! The first argument is the Table 2 mix index (1..=11, default 1), the
//! second the per-run commit budget (default 30 000).

use smtsim_rob2::{Lab, RobConfig, TwoLevelConfig};
use smtsim_workload::mix;

fn main() {
    let mix_idx: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    if !(1..=11).contains(&mix_idx) {
        eprintln!("error: mix index {mix_idx} out of range 1..=11 (Table 2)");
        std::process::exit(2);
    }
    let budget: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let mut lab = Lab::new(42).with_budgets(budget, budget);

    let m = mix(mix_idx);
    println!("{} ({:?}): {}\n", m.name, m.class, m.benchmarks.join(" + "));

    let configs = [
        RobConfig::Baseline(32),
        RobConfig::Baseline(128),
        RobConfig::TwoLevel(TwoLevelConfig::r_rob(16)),
        RobConfig::TwoLevel(TwoLevelConfig::relaxed_r_rob(15)),
        RobConfig::TwoLevel(TwoLevelConfig::cdr_rob(15)),
        RobConfig::TwoLevel(TwoLevelConfig::p_rob(3)),
        RobConfig::TwoLevel(TwoLevelConfig::p_rob(5)),
    ];

    for cfg in configs {
        let r = lab.run_mix(mix_idx, cfg);
        println!(
            "{:<26} FT={:.4}  throughput={:.3} IPC",
            r.config, r.ft, r.throughput
        );
        for (slot, bench) in m.benchmarks.iter().enumerate() {
            let t = &r.stats.threads[slot];
            println!(
                "   {:<8} ipc={:.3} (alone {:.3}, weighted {:.3})  L2 misses={}  ROB-stall cycles={}",
                bench, r.ipc[slot], r.single_ipc[slot], r.weighted[slot], t.l2_misses, t.rob_stall_cycles
            );
        }
        if let Some(tl) = r.twolevel {
            println!(
                "   second level: {} allocations (avg tenure {:.0} cycles), {} DoD-rejections, {} busy-rejections",
                tl.allocations,
                tl.held_cycles as f64 / tl.allocations.max(1) as f64,
                tl.rejected_dod,
                tl.rejected_busy
            );
            if tl.pred_verified > 0 {
                println!(
                    "   DoD predictor: {:.1}% verified accuracy ({} cold starts)",
                    tl.prediction_accuracy() * 100.0,
                    tl.pred_cold
                );
            }
        }
        println!();
    }
}
