//! `cargo xtask` — workspace automation.
//!
//! Subcommands:
//!
//! * `lint` — source-level policy checks (below);
//! * `determinism` — runs representative figure binaries (plus the
//!   `trace` structured-dump bin) at `SMTSIM_JOBS=1` and
//!   `SMTSIM_JOBS=4` and fails unless their stdout is byte-identical:
//!   the parallel sweep engine is *defined* to produce the serial
//!   output at any job count. Budget knobs (`BUDGET`/`WARMUP`/
//!   `MIXES`…) are honored when already set in the environment;
//!   otherwise a fast CI-scale budget is used. Bins run in a scratch
//!   CWD so reduced-budget artifacts never overwrite the committed
//!   `results/`. The `trace` and `accuracy` outputs (the contents of
//!   `results/episodes.txt` and `results/accuracy.txt` at CI scale)
//!   are additionally pinned byte-for-byte against the committed
//!   golden files in `tests/golden/`; `--bless` rewrites the goldens
//!   after an intended change. Golden comparison is skipped when any
//!   budget knob is overridden, because the goldens are recorded at
//!   the default CI-scale settings. A third `fig2` leg runs under
//!   `SMTSIM_NO_SKIP=1` and must match the default output
//!   byte-for-byte: event-driven cycle skipping (DESIGN.md §15) is
//!   defined to be timing-transparent. A final leg runs the generic
//!   `spec` bin against the committed malformed-spec fixture and
//!   requires exit code 2 with an error naming the offending key —
//!   the typed-spec-error contract, pinned end to end.
//! * `conform` — runs the `conform` differential-conformance bin
//!   (committed mixes + fuzz corpus replay + fresh-seed smoke) at
//!   `SMTSIM_JOBS=1` and `SMTSIM_JOBS=4` and fails unless both runs
//!   pass with byte-identical stdout: generated fuzz programs and
//!   verdicts must be a pure function of `FUZZ_SEED`.
//! * `check` — runs the `check` bounded-model-checking bin (exhaustive
//!   protocol exploration at CI bounds + live-trace conformance) twice
//!   and fails unless both runs pass with byte-identical stdout, then
//!   runs the `smtsim-check` mutation self-test on both sides of the
//!   `seeded-release-bug` feature: the explorer must be clean on the
//!   pristine model *and* catch the planted bug with its minimal
//!   counterexample (DESIGN.md §14).
//!
//! `lint` checks are things rustc/clippy cannot express because they
//! are *policy*, not language rules:
//!
//! * **hash-collections** — `HashMap`/`HashSet` in production sources.
//!   Their iteration order is nondeterministic per process, so a hash
//!   collection anywhere near simulator state or report/figure output
//!   silently breaks byte-for-byte reproducibility. Use
//!   `BTreeMap`/`BTreeSet` (or annotate the line with
//!   `// xtask: allow-hash-collection — <reason>` for a keyed lookup
//!   that provably never iterates).
//! * **unwrap-in-pipeline** — `.unwrap()` / `.expect(` in
//!   `crates/pipeline` hot paths. The simulator reports integrity
//!   failures as typed `SimError`s; a panic in a stage poisons a whole
//!   sweep instead of one cell. Marker: `// xtask: allow-unwrap`.
//! * **lossy-cast-in-stats** — narrowing `as` casts in stats/metrics
//!   accounting files, where a truncated counter produces a plausible
//!   but wrong figure. Marker: `// xtask: allow-lossy-cast`.
//! * **env-read-outside-benchenv** — `env::var` / `env::var_os` reads
//!   anywhere but `crates/bench/src/env.rs`. Every experiment knob
//!   parses exactly once through `BenchEnv::from_env`, so the knob
//!   table in `smtsim-bench`'s docs is authoritative and a typo'd
//!   variable fails loudly instead of silently using a default.
//!   Marker: `// xtask: allow-env-read`.
//! * **wall-clock-in-sim** — `Instant` / `SystemTime` reads outside
//!   the cell watchdog (`crates/pipeline/src/budget.rs`) and the bench
//!   timing runners (`spec_run/sweep_bench.rs`,
//!   `spec_run/serve_bench.rs`, `spec_run/resume.rs`).
//!   Simulated time comes from the cycle counter; a wall-clock read
//!   anywhere near simulator state or report output makes figures
//!   machine- and load-dependent. Marker: `// xtask: allow-wall-clock`.
//! * **scheme-wiring-outside-registry** — `RobConfig::Baseline(…)`,
//!   `RobConfig::TwoLevel(…)` or `TwoLevelConfig::…` constructions in
//!   `crates/bench/src`. The bench layer executes committed
//!   `experiments/*.toml` specs; every scheme it runs must resolve
//!   through the spec registry so the spec files stay the single
//!   source of experiment truth. Marker: `// xtask: allow-scheme-wiring`.
//! * **stale-allow-marker** — any `xtask: allow-*` marker whose own
//!   line and next line contain nothing the marker suppresses. Stale
//!   allowances are refused outright: left in place, they silently
//!   bless the *next* violation someone introduces on that line.
//!
//! Test code is exempt: `tests/` directories, and everything at or
//! below the first `#[cfg(test)]` line of a file (the workspace
//! convention keeps the test module last).
//!
//! Run as `cargo xtask lint` (alias in `.cargo/config.toml`). Exits 1
//! when violations are found, printing `path:line: [rule] message`.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic output. `skip_tests` drops `tests/` directories.
fn rust_sources(dir: &Path, skip_tests: bool, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if skip_tests && (name == "tests" || name == "benches" || name == "target") {
                continue;
            }
            rust_sources(&path, skip_tests, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// The code portion of a source line: strips `//` comments (including
/// doc comments) so prose mentioning `HashMap` never trips the lint.
/// String literals containing `//` are not handled — acceptable for a
/// policy lint over this workspace.
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Does `lines[idx]` carry `marker` on the same or the previous line?
fn allowed(lines: &[&str], idx: usize, marker: &str) -> bool {
    lines[idx].contains(marker) || (idx > 0 && lines[idx - 1].contains(marker))
}

/// The narrowing `as` casts the stats lint rejects.
const NARROWING_CASTS: &[&str] = &[
    " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
];

/// Does `code` contain `cast` at a word boundary (so ` as u32` does
/// not also match inside ` as u32x4`-style names)?
fn has_cast(code: &str, cast: &str) -> bool {
    let mut search = code;
    while let Some(i) = search.find(cast) {
        let after = &search[i + cast.len()..];
        if after.chars().next().is_none_or(|c| !c.is_alphanumeric()) {
            return true;
        }
        search = after;
    }
    false
}

/// Does `code` mention `tok` as a standalone identifier (both sides
/// bounded, so `Instantiates` in a name never matches `Instant`)?
fn has_token(code: &str, tok: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(i) = code[start..].find(tok) {
        let at = start + i;
        let end = at + tok.len();
        let word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
        let before_ok = at == 0 || !word(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !word(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = end;
    }
    false
}

/// Does `code` read a wall clock (`Instant` / `SystemTime`)?
fn has_wall_clock(code: &str) -> bool {
    has_token(code, "Instant") || has_token(code, "SystemTime")
}

/// Does `code` hardcode a ROB scheme construction (the wiring the
/// spec registry owns)?
fn has_scheme_wiring(code: &str) -> bool {
    code.contains("RobConfig::Baseline")
        || code.contains("RobConfig::TwoLevel")
        || code.contains("TwoLevelConfig::")
}

/// Predicate deciding whether a code line needs a given allow-marker.
type MarkerUse = fn(&str) -> bool;

/// Every allow-marker, paired with the predicate deciding whether a
/// line actually needs it. A marker whose own line and next line both
/// fail the predicate is *stale* — a hard lint failure, because dead
/// markers rot into false confidence that a suppression is load-
/// bearing.
const MARKER_USES: &[(&str, MarkerUse)] = &[
    ("xtask: allow-hash-collection", |c| {
        c.contains("HashMap") || c.contains("HashSet")
    }),
    ("xtask: allow-unwrap", |c| {
        c.contains(".unwrap()") || c.contains(".expect(")
    }),
    ("xtask: allow-lossy-cast", |c| {
        NARROWING_CASTS.iter().any(|cast| has_cast(c, cast))
    }),
    ("xtask: allow-env-read", |c| c.contains("env::var")),
    ("xtask: allow-wall-clock", has_wall_clock),
    ("xtask: allow-scheme-wiring", has_scheme_wiring),
];

/// Index of the first `#[cfg(test)]`-style line, i.e. where the file's
/// test module begins; everything from there on is exempt.
fn test_code_start(lines: &[&str]) -> usize {
    lines
        .iter()
        .position(|l| {
            let t = l.trim_start();
            t.starts_with("#[cfg(") && t.contains("test")
        })
        .unwrap_or(lines.len())
}

/// Scans one production source file. `is_env_funnel` marks the single
/// file allowed to read the process environment; `is_wall_exempt`
/// marks the files where wall-clock reads are the point (the cell
/// watchdog and the bench timing bins).
fn scan_file(
    path: &Path,
    in_pipeline: bool,
    is_stats: bool,
    is_env_funnel: bool,
    is_wall_exempt: bool,
    in_bench: bool,
    out: &mut Vec<Violation>,
) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let lines: Vec<&str> = text.lines().collect();
    let end = test_code_start(&lines);
    for (idx, raw) in lines.iter().enumerate().take(end) {
        let code = code_of(raw);
        let lineno = idx + 1;
        for coll in ["HashMap", "HashSet"] {
            if code.contains(coll) && !allowed(&lines, idx, "xtask: allow-hash-collection") {
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: lineno,
                    rule: "hash-collections",
                    message: format!(
                        "{coll} in production code: iteration order is nondeterministic; \
                         use BTreeMap/BTreeSet or annotate `// xtask: allow-hash-collection`"
                    ),
                });
            }
        }
        if in_pipeline
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !allowed(&lines, idx, "xtask: allow-unwrap")
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: lineno,
                rule: "unwrap-in-pipeline",
                message: "panicking extractor in a pipeline hot path: report a typed \
                          SimError (or annotate `// xtask: allow-unwrap`)"
                    .into(),
            });
        }
        if !is_env_funnel
            && code.contains("env::var")
            && !allowed(&lines, idx, "xtask: allow-env-read")
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: lineno,
                rule: "env-read-outside-benchenv",
                message: "environment read outside `crates/bench/src/env.rs`: route the \
                          knob through `BenchEnv::from_env` so the documented knob table \
                          stays authoritative (or annotate `// xtask: allow-env-read`)"
                    .into(),
            });
        }
        if is_stats && !allowed(&lines, idx, "xtask: allow-lossy-cast") {
            for cast in NARROWING_CASTS {
                if has_cast(code, cast) {
                    out.push(Violation {
                        file: path.to_path_buf(),
                        line: lineno,
                        rule: "lossy-cast-in-stats",
                        message: format!(
                            "narrowing `{}` in stats accounting can silently truncate \
                             a counter; widen instead (or annotate \
                             `// xtask: allow-lossy-cast`)",
                            cast.trim_start()
                        ),
                    });
                }
            }
        }
        if !is_wall_exempt
            && has_wall_clock(code)
            && !allowed(&lines, idx, "xtask: allow-wall-clock")
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: lineno,
                rule: "wall-clock-in-sim",
                message: "wall-clock read (`Instant`/`SystemTime`) outside the cell \
                          watchdog and the bench timing bins: simulated time comes from \
                          the cycle counter, so figures and verdicts stay machine- and \
                          load-independent (or annotate `// xtask: allow-wall-clock`)"
                    .into(),
            });
        }
        if in_bench
            && has_scheme_wiring(code)
            && !allowed(&lines, idx, "xtask: allow-scheme-wiring")
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: lineno,
                rule: "scheme-wiring-outside-registry",
                message: "hardcoded ROB scheme construction in the bench layer: resolve \
                          the configuration through the spec registry (a scheme id in the \
                          experiment spec) so `experiments/*.toml` stays the single source \
                          of experiment truth (or annotate `// xtask: allow-scheme-wiring`)"
                    .into(),
            });
        }
        // Stale allow-markers: a marker that suppresses nothing on its
        // own or the next line is refused outright.
        for &(marker, used_by) in MARKER_USES {
            if raw.contains(marker)
                && !used_by(code)
                && !lines.get(idx + 1).is_some_and(|l| used_by(code_of(l)))
            {
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: lineno,
                    rule: "stale-allow-marker",
                    message: format!(
                        "`{marker}` suppresses nothing on this or the next line; \
                         remove the marker (stale allowances hide future violations)"
                    ),
                });
            }
        }
    }
}

/// Runs every lint over the workspace rooted at `root`; returns the
/// violations sorted by file and line.
fn run_lints(root: &Path) -> Vec<Violation> {
    // Scope: the simulator production crates. `xtask` itself and the
    // vendored proptest shim are not simulator state/output.
    let mut files = Vec::new();
    rust_sources(&root.join("crates"), true, &mut files);
    let mut out = Vec::new();
    for f in &files {
        let rel = f.strip_prefix(root).unwrap_or(f);
        let in_pipeline = rel.starts_with("crates/pipeline/src");
        let stem = rel.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let is_stats = stem == "stats.rs" || stem == "metrics.rs";
        let is_env_funnel = rel == Path::new("crates/bench/src/env.rs");
        // Wall-clock reads are the *purpose* of the cell watchdog and
        // of the bench timing runners; everywhere else they are a
        // determinism hazard.
        let is_wall_exempt = rel == Path::new("crates/pipeline/src/budget.rs")
            || rel == Path::new("crates/bench/src/spec_run/sweep_bench.rs")
            || rel == Path::new("crates/bench/src/spec_run/serve_bench.rs")
            || rel == Path::new("crates/bench/src/spec_run/resume.rs");
        let in_bench = rel.starts_with("crates/bench/src");
        scan_file(
            f,
            in_pipeline,
            is_stats,
            is_env_funnel,
            is_wall_exempt,
            in_bench,
            &mut out,
        );
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// The CI-scale budget the `determinism` harness uses when the caller
/// has not already pinned the knobs. Golden files under `tests/golden/`
/// are recorded at exactly these settings.
const DETERMINISM_DEFAULTS: &[(&str, &str)] = &[
    ("BUDGET", "8000"),
    ("WARMUP", "10000"),
    ("MIXES", "1,2,9"),
    // Small model bounds for the `check` bin's exploration pass — the
    // full CI bounds run in `cargo xtask check`; here the point is
    // only that the report bytes are identical across runs.
    ("CHECK_THREADS", "2"),
    ("CHECK_L2", "2"),
];

/// Runs one `smtsim-bench` binary at the given job count and captures
/// stdout. Knobs already present in the environment win over the
/// `defaults`; otherwise a fast CI-scale budget keeps the check under
/// a minute. `forced` entries are set unconditionally — they override
/// both the defaults and the caller's environment (used for legs that
/// deliberately flip a knob, like the `SMTSIM_NO_SKIP` comparison).
fn run_bench_bin(
    root: &Path,
    bin: &str,
    jobs: usize,
    defaults: &[(&str, &str)],
    forced: &[(&str, &str)],
) -> Result<String, String> {
    // Bins write `results/` relative to their CWD; run them in a
    // scratch directory so this reduced-budget check never overwrites
    // the committed full-budget artifacts.
    let scratch = root.join("target/xtask-determinism");
    std::fs::create_dir_all(&scratch).map_err(|e| format!("cannot create scratch dir: {e}"))?;
    let manifest = root
        .join("Cargo.toml")
        .canonicalize()
        .map_err(|e| format!("cannot resolve workspace manifest: {e}"))?;
    let mut cmd = std::process::Command::new("cargo");
    cmd.current_dir(&scratch)
        .args(["run", "--release", "-q", "--manifest-path"])
        .arg(manifest)
        .args(["-p", "smtsim-bench", "--bin", bin])
        .env("SMTSIM_JOBS", jobs.to_string());
    for &(k, v) in defaults {
        if std::env::var_os(k).is_none() {
            cmd.env(k, v);
        }
    }
    for &(k, v) in forced {
        cmd.env(k, v);
    }
    let out = cmd
        .output()
        .map_err(|e| format!("cannot spawn cargo for {bin}: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "{bin} (SMTSIM_JOBS={jobs}) failed with {}:\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout).into_owned())
}

/// Reports the first line where two captured outputs diverge.
fn report_first_divergence(label_a: &str, a: &str, label_b: &str, b: &str) {
    for (n, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            eprintln!("  first divergence at line {}:", n + 1);
            eprintln!("    {label_a}: {la}");
            eprintln!("    {label_b}: {lb}");
            return;
        }
    }
    // Same shared prefix: one side simply has more lines.
    eprintln!(
        "  outputs share a common prefix; line counts differ ({} vs {})",
        a.lines().count(),
        b.lines().count()
    );
}

/// The bins whose CI-scale stdout is pinned byte-for-byte under
/// `tests/golden/` (the stdout of `trace` is exactly the
/// `results/episodes.txt` table; `accuracy` prints the
/// `results/accuracy.txt` table).
const GOLDEN_BINS: &[(&str, &str)] = &[("trace", "episodes.txt"), ("accuracy", "accuracy.txt")];

/// Compares one bin's captured stdout against its committed golden
/// file (or rewrites the golden when `bless` is set). Only meaningful
/// when the caller is running at the default CI-scale knob values —
/// with knobs overridden in the environment the comparison is skipped.
fn check_golden(root: &Path, bin: &str, golden: &str, output: &str, bless: bool) -> Result<(), ()> {
    let path = root.join("tests/golden").join(golden);
    if bless {
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("xtask determinism: cannot create {}: {e}", dir.display());
                return Err(());
            }
        }
        return match std::fs::write(&path, output) {
            Ok(()) => {
                println!("xtask determinism: {bin}: blessed tests/golden/{golden}");
                Ok(())
            }
            Err(e) => {
                eprintln!("xtask determinism: cannot write {}: {e}", path.display());
                Err(())
            }
        };
    }
    match std::fs::read_to_string(&path) {
        Ok(expected) if expected == output => {
            println!("xtask determinism: {bin}: matches tests/golden/{golden}");
            Ok(())
        }
        Ok(expected) => {
            eprintln!(
                "xtask determinism: {bin}: OUTPUT DRIFTED from tests/golden/{golden} \
                 (run `cargo xtask determinism --bless` if the change is intended)"
            );
            report_first_divergence("golden", &expected, "actual", output);
            Err(())
        }
        Err(e) => {
            eprintln!(
                "xtask determinism: {bin}: cannot read {} ({e}); \
                 run `cargo xtask determinism --bless` to record it",
                path.display()
            );
            Err(())
        }
    }
}

/// The spec-error leg of the `determinism` harness: the generic
/// `spec` bin, pointed at the committed malformed fixture, must exit
/// with code 2 (invalid configuration) and an error naming the
/// offending key — proving malformed TOML surfaces as a typed
/// `SimError::InvalidConfig` through `run_bin`, never as a panic.
fn check_malformed_spec(root: &Path) -> Result<(), String> {
    let fixture = root
        .join("xtask/fixtures/malformed-spec.toml")
        .canonicalize()
        .map_err(|e| format!("cannot resolve malformed-spec fixture: {e}"))?;
    let manifest = root
        .join("Cargo.toml")
        .canonicalize()
        .map_err(|e| format!("cannot resolve workspace manifest: {e}"))?;
    let out = std::process::Command::new("cargo")
        .args(["run", "--release", "-q", "--manifest-path"])
        .arg(manifest)
        .args(["-p", "smtsim-bench", "--bin", "spec"])
        .env("SMTSIM_SPEC", &fixture)
        .output()
        .map_err(|e| format!("cannot spawn cargo for spec: {e}"))?;
    let stderr = String::from_utf8_lossy(&out.stderr);
    if out.status.code() != Some(2) {
        return Err(format!(
            "spec bin on the malformed fixture exited with {:?}, expected 2:\n{stderr}",
            out.status.code()
        ));
    }
    if !stderr.contains("budgett") {
        return Err(format!(
            "spec bin's error does not name the offending key `budgett`:\n{stderr}"
        ));
    }
    Ok(())
}

/// The `determinism` subcommand: byte-compares serial vs. 4-way
/// parallel output of one FT figure, one DoD histogram, the accuracy
/// table and the structured-trace episode summary (the figure kinds
/// the sweep engine feeds, plus the traced sweep variant). The
/// `trace`/`accuracy` outputs are additionally pinned against the
/// committed golden files in `tests/golden/` (skipped when the budget
/// knobs are overridden in the environment, since the goldens are
/// recorded at the default CI-scale settings); `--bless` rewrites the
/// goldens instead. `resume_bench` rides along to pin the
/// crash-tolerance contract: a sweep killed mid-flight and relaunched
/// on its journal must reproduce the uninterrupted figure bytes (the
/// bin exits nonzero on divergence), and its verdict line must itself
/// be identical at both job counts. `serve_bench` does the same for
/// the serve daemon's content-addressed cache: its warm replay must be
/// byte-identical and all cache hits (the bin exits nonzero
/// otherwise), and its verdict is compared across worker fan-outs.
fn run_determinism(root: &Path, bless: bool) -> ExitCode {
    let mut failed = false;
    // Goldens are only valid at the recorded knob values.
    let knobs_default = DETERMINISM_DEFAULTS
        .iter()
        .chain([&("SEED", ""), &("ST_BUDGET", "")])
        .all(|(k, _)| std::env::var_os(k).is_none());
    for bin in [
        "fig2",
        "fig1",
        "accuracy",
        "trace",
        "resume_bench",
        "serve_bench",
        "check",
    ] {
        let serial = match run_bench_bin(root, bin, 1, DETERMINISM_DEFAULTS, &[]) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask determinism: {e}");
                failed = true;
                continue;
            }
        };
        let parallel = match run_bench_bin(root, bin, 4, DETERMINISM_DEFAULTS, &[]) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask determinism: {e}");
                failed = true;
                continue;
            }
        };
        if serial == parallel {
            println!("xtask determinism: {bin}: identical at jobs 1 and 4");
        } else {
            failed = true;
            eprintln!("xtask determinism: {bin}: OUTPUT DIFFERS between jobs 1 and 4");
            report_first_divergence("jobs=1", &serial, "jobs=4", &parallel);
        }
        if let Some(&(_, golden)) = GOLDEN_BINS.iter().find(|&&(b, _)| b == bin) {
            if knobs_default {
                if check_golden(root, bin, golden, &serial, bless).is_err() {
                    failed = true;
                }
            } else {
                println!("xtask determinism: {bin}: golden comparison skipped (knobs overridden)");
            }
        }
        // Cycle skipping is defined to be timing-transparent
        // (DESIGN.md §15): a fast-forwarded quiet stretch must leave
        // the machine in exactly the state the cycle-by-cycle loop
        // would have reached. Pin that with a third fig2 leg run under
        // `SMTSIM_NO_SKIP=1` and byte-compared against the default.
        if bin == "fig2" {
            match run_bench_bin(
                root,
                bin,
                1,
                DETERMINISM_DEFAULTS,
                &[("SMTSIM_NO_SKIP", "1")],
            ) {
                Ok(noskip) if noskip == serial => {
                    println!("xtask determinism: {bin}: identical with SMTSIM_NO_SKIP=1");
                }
                Ok(noskip) => {
                    failed = true;
                    eprintln!(
                        "xtask determinism: {bin}: OUTPUT DIFFERS with SMTSIM_NO_SKIP=1 \
                         (cycle skipping is not timing-transparent)"
                    );
                    report_first_divergence("skip", &serial, "no-skip", &noskip);
                }
                Err(e) => {
                    eprintln!("xtask determinism: {e}");
                    failed = true;
                }
            }
        }
    }
    match check_malformed_spec(root) {
        Ok(()) => {
            println!("xtask determinism: spec: malformed fixture exits 2 naming the key");
        }
        Err(e) => {
            failed = true;
            eprintln!("xtask determinism: {e}");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Knob defaults for the `conform` subcommand: a reduced differential
/// (two mixes, small budget) plus a bounded fresh-fuzz smoke, sized to
/// keep both job-count runs under a minute together.
const CONFORM_DEFAULTS: &[(&str, &str)] = &[
    ("BUDGET", "4000"),
    ("WARMUP", "2000"),
    ("MIXES", "1,2"),
    ("FUZZ_CASES", "2"),
    ("FUZZ_SEED", "2026"),
];

/// The `conform` subcommand: runs the differential conformance bin at
/// `SMTSIM_JOBS=1` and `SMTSIM_JOBS=4` and fails unless (a) both runs
/// pass and (b) their stdout is byte-identical — the acceptance
/// criterion that the fuzzer's generated programs and verdicts are a
/// pure function of `FUZZ_SEED`, independent of worker count.
fn run_conform(root: &Path) -> ExitCode {
    let serial = match run_bench_bin(root, "conform", 1, CONFORM_DEFAULTS, &[]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask conform: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parallel = match run_bench_bin(root, "conform", 4, CONFORM_DEFAULTS, &[]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask conform: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{serial}");
    if serial == parallel {
        println!("xtask conform: identical at jobs 1 and 4");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask conform: OUTPUT DIFFERS between jobs 1 and 4");
        report_first_divergence("jobs=1", &serial, "jobs=4", &parallel);
        ExitCode::FAILURE
    }
}

/// Knob defaults for the `check` subcommand: the model checker at its
/// CI bounds (every scheme family × release policy, exhaustively) plus
/// a reduced live-trace conformance pass, sized to finish well under a
/// minute.
const CHECK_DEFAULTS: &[(&str, &str)] = &[
    ("BUDGET", "4000"),
    ("WARMUP", "2000"),
    ("MIXES", "1,9"),
    ("CHECK_THREADS", "3"),
    ("CHECK_L2", "2"),
];

/// Runs the `smtsim-check` mutation self-test, with or without the
/// `seeded-release-bug` feature. Both sides must pass as cargo tests:
/// the pristine side asserts the explorer finds nothing, the seeded
/// side asserts it finds the planted release bug with its minimal
/// three-step counterexample — so a checker that silently stopped
/// checking fails here.
fn run_mutation_selftest(root: &Path, seeded: bool) -> Result<(), String> {
    let manifest = root
        .join("Cargo.toml")
        .canonicalize()
        .map_err(|e| format!("cannot resolve workspace manifest: {e}"))?;
    let mut cmd = std::process::Command::new("cargo");
    cmd.args(["test", "-q", "--manifest-path"])
        .arg(manifest)
        .args(["-p", "smtsim-check", "--test", "mutation"]);
    if seeded {
        cmd.args(["--features", "seeded-release-bug"]);
    }
    let out = cmd
        .output()
        .map_err(|e| format!("cannot spawn cargo test: {e}"))?;
    if out.status.success() {
        Ok(())
    } else {
        Err(format!(
            "mutation self-test (seeded={seeded}) failed with {}:\n{}{}",
            out.status,
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        ))
    }
}

/// The `check` subcommand: runs the bounded model checker + trace
/// conformance bin twice and fails unless both runs pass with
/// byte-identical stdout (the checker's report — state counts,
/// counterexamples, conformance tallies — must be a pure function of
/// its knobs), then runs the mutation self-test on both sides of the
/// `seeded-release-bug` feature.
fn run_check(root: &Path) -> ExitCode {
    let first = match run_bench_bin(root, "check", 1, CHECK_DEFAULTS, &[]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let second = match run_bench_bin(root, "check", 4, CHECK_DEFAULTS, &[]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask check: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{first}");
    if first != second {
        eprintln!("xtask check: OUTPUT DIFFERS between runs");
        report_first_divergence("run 1", &first, "run 2", &second);
        return ExitCode::FAILURE;
    }
    println!("xtask check: report identical across runs");
    for seeded in [false, true] {
        if let Err(e) = run_mutation_selftest(root, seeded) {
            eprintln!("xtask check: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("xtask check: mutation self-test passed (pristine clean, seeded bug caught)");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_default();
    // `--root` serves the self-tests and lets CI lint a checkout from
    // anywhere; default is the manifest's parent (the workspace root).
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..");
    let mut rest = Vec::new();
    while let Some(a) = args.next() {
        if a == "--root" {
            match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("xtask: --root requires a value");
                    return ExitCode::from(2);
                }
            }
        } else {
            rest.push(a);
        }
    }
    match cmd.as_str() {
        "lint" if rest.is_empty() => {
            let violations = run_lints(&root);
            for v in &violations {
                println!("{v}");
            }
            if violations.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        "determinism" if rest.is_empty() => run_determinism(&root, false),
        "determinism" if rest == ["--bless"] => run_determinism(&root, true),
        "conform" if rest.is_empty() => run_conform(&root),
        "check" if rest.is_empty() => run_check(&root),
        _ => {
            eprintln!(
                "usage: cargo xtask <lint|determinism [--bless]|conform|check> [--root PATH]"
            );
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/seeded-violation")
    }

    fn repo_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..")
    }

    #[test]
    fn seeded_hashmap_violation_fails() {
        // The fixture plants a HashMap iteration in a report-output
        // path; the lint must refuse it.
        let violations = run_lints(&fixture_root());
        assert!(
            violations
                .iter()
                .any(|v| v.rule == "hash-collections"
                    && v.file.ends_with("crates/core/src/report.rs")),
            "expected a hash-collections violation, got: {violations:?}"
        );
    }

    #[test]
    fn seeded_unwrap_and_cast_violations_fail() {
        let violations = run_lints(&fixture_root());
        assert!(violations
            .iter()
            .any(|v| v.rule == "unwrap-in-pipeline"
                && v.file.ends_with("crates/pipeline/src/stages.rs")));
        assert!(violations
            .iter()
            .any(|v| v.rule == "lossy-cast-in-stats"
                && v.file.ends_with("crates/pipeline/src/stats.rs")));
    }

    #[test]
    fn seeded_env_read_violation_fails() {
        // The fixture plants a bare `env::var` knob read in a figure
        // bin; the lint must refuse it — while the designated funnel
        // file `crates/bench/src/env.rs` stays exempt.
        let violations = run_lints(&fixture_root());
        assert!(
            violations
                .iter()
                .any(|v| v.rule == "env-read-outside-benchenv"
                    && v.file.ends_with("crates/bench/src/bin/figx.rs")),
            "expected an env-read violation, got: {violations:?}"
        );
        assert!(
            !violations
                .iter()
                .any(|v| v.file.ends_with("crates/bench/src/env.rs")),
            "the BenchEnv funnel itself must be exempt: {violations:?}"
        );
    }

    #[test]
    fn seeded_wall_clock_violations_fail() {
        // The fixture plants `Instant` and `SystemTime` reads in core
        // simulator code; the lint must refuse both.
        let violations = run_lints(&fixture_root());
        let wall: Vec<_> = violations
            .iter()
            .filter(|v| v.rule == "wall-clock-in-sim")
            .collect();
        assert!(
            wall.len() >= 2
                && wall
                    .iter()
                    .all(|v| v.file.ends_with("crates/core/src/timer.rs")),
            "expected both timer.rs wall-clock violations, got: {wall:?}"
        );
    }

    #[test]
    fn stale_allow_markers_fail_hard() {
        // The fixture plants an allow-wall-clock marker over pure code
        // and a same-line allow-unwrap over a plain literal; both must
        // be refused as stale.
        let violations = run_lints(&fixture_root());
        let stale: Vec<_> = violations
            .iter()
            .filter(|v| v.rule == "stale-allow-marker")
            .collect();
        assert_eq!(
            stale.len(),
            2,
            "expected exactly the two stale.rs markers, got: {stale:?}"
        );
        assert!(stale
            .iter()
            .all(|v| v.file.ends_with("crates/core/src/stale.rs")));
    }

    #[test]
    fn seeded_scheme_wiring_violation_fails() {
        // The fixture plants inline RobConfig/TwoLevelConfig
        // constructions in a bench bin; the lint must refuse the bare
        // ones and accept the annotated one.
        let violations = run_lints(&fixture_root());
        let wiring: Vec<_> = violations
            .iter()
            .filter(|v| v.rule == "scheme-wiring-outside-registry")
            .collect();
        assert_eq!(
            wiring.len(),
            2,
            "expected exactly the two bare hardwired.rs constructions, got: {wiring:?}"
        );
        assert!(wiring
            .iter()
            .all(|v| v.file.ends_with("crates/bench/src/bin/hardwired.rs")));
        // Core is out of scope: the registry itself constructs configs.
        assert!(!violations
            .iter()
            .any(|v| v.rule == "scheme-wiring-outside-registry"
                && !v.file.to_string_lossy().contains("crates/bench/")));
    }

    #[test]
    fn wall_clock_token_matching_is_word_bounded() {
        assert!(has_wall_clock("let t = std::time::Instant::now();"));
        assert!(has_wall_clock("SystemTime::now()"));
        assert!(!has_wall_clock("mix.instantiate(seed)"));
        assert!(!has_wall_clock("fn InstantiatesNothing() {}"));
        assert!(!has_wall_clock("let my_Instant_like = 3;"));
    }

    #[test]
    fn fixture_allowed_lines_are_clean() {
        // The fixture also contains annotated lines and test-module
        // lines that must NOT fire.
        let violations = run_lints(&fixture_root());
        for v in &violations {
            assert!(
                !v.file.ends_with("crates/core/src/allowed.rs"),
                "annotated/test code flagged: {v}"
            );
        }
    }

    #[test]
    fn real_workspace_is_clean() {
        let violations = run_lints(&repo_root());
        assert!(
            violations.is_empty(),
            "workspace has lint violations:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn golden_bless_then_match_then_drift() {
        // Round-trip the golden machinery against a scratch root:
        // bless records the output, an identical rerun matches, and a
        // one-byte drift is refused.
        let root = repo_root().join("target/xtask-golden-selftest");
        let _ = std::fs::remove_dir_all(&root);
        let out = "line one\nline two\n";
        assert!(check_golden(&root, "trace", "episodes.txt", out, true).is_ok());
        assert!(check_golden(&root, "trace", "episodes.txt", out, false).is_ok());
        let drifted = "line one\nline 2wo\n";
        assert!(check_golden(&root, "trace", "episodes.txt", drifted, false).is_err());
        // A missing golden is an error (with a --bless hint), not a
        // silent pass.
        assert!(check_golden(&root, "accuracy", "accuracy.txt", out, false).is_err());
    }

    #[test]
    fn comment_mentions_do_not_fire() {
        assert_eq!(code_of("let x = 1; // HashMap is banned"), "let x = 1; ");
        assert_eq!(code_of("/// HashMap docs"), "");
    }

    #[test]
    fn test_module_detection() {
        let lines = vec!["fn a() {}", "#[cfg(test)]", "mod tests {}"];
        assert_eq!(test_code_start(&lines), 1);
        let no_tests = vec!["fn a() {}"];
        assert_eq!(test_code_start(&no_tests), 1);
    }
}
