//! Seeded lint-violation fixture: a bench bin constructing its ROB
//! schemes inline instead of resolving ids through the spec registry
//! — exactly the drift the scheme-wiring-outside-registry rule bans.
//! Not part of the workspace build; `cargo xtask` tests scan it.

fn main() {
    let base = RobConfig::Baseline(32);
    let two = RobConfig::TwoLevel(TwoLevelConfig::r_rob(16));
    // An annotated construction stays allowed:
    let kernel = TwoLevelConfig::r_rob(1); // xtask: allow-scheme-wiring — microbenchmark fixture
    println!("{base:?} {two:?} {kernel:?}");
}
