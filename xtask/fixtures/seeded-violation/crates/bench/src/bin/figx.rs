//! Seeded lint-violation fixture: a figure bin reading an experiment
//! knob directly from the environment instead of through
//! `BenchEnv::from_env` — exactly the drift the
//! env-read-outside-benchenv rule bans. Not part of the workspace
//! build; `cargo xtask` tests scan it.

fn main() {
    let budget: u64 = std::env::var("BUDGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    println!("{budget}");
}
