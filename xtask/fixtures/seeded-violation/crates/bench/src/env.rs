//! Fixture counterpart: the designated env funnel. This path
//! (`crates/bench/src/env.rs`) is the one file allowed to read the
//! process environment without an annotation.

pub fn knob(name: &str) -> Option<String> {
    std::env::var(name).ok()
}
