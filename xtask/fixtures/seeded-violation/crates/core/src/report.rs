//! Seeded lint-violation fixture: a HashMap iteration feeding report
//! output — exactly the nondeterminism the hash-collections rule bans.
//! This file is NOT part of the workspace build; `cargo xtask` tests
//! scan it to prove the lint fails on a real violation.

use std::collections::HashMap;

pub fn render(rows: &HashMap<String, f64>) -> String {
    let mut out = String::new();
    // Iteration order varies run to run -> bytes differ.
    for (k, v) in rows {
        out.push_str(&format!("{k}: {v}\n"));
    }
    out
}
