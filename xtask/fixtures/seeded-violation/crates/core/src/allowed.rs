//! Fixture counterpart: lines the lints must NOT flag — annotated
//! allowances, comment mentions, and test-module code.

// A keyed lookup that never iterates, with the required annotation:
// xtask: allow-hash-collection — keyed lookup only, never iterated
use std::collections::HashMap;

/// Mentioning HashMap in a doc comment is fine.
pub fn lookup(m: &HashMap<u64, u64>, k: u64) -> Option<u64> { // xtask: allow-hash-collection
    // HashMap in a line comment is also fine.
    m.get(&k).copied()
}

/// A dev-tool toggle with the required annotation; `env::var` in this
/// doc comment must not fire either.
pub fn private_regs() -> bool {
    std::env::var("PRIVATE_REGS").is_ok() // xtask: allow-env-read
}

/// An annotated wall-clock read (a watchdog anchor) is fine, and the
/// marker is *used*, so the stale-marker rule stays quiet too.
/// `Instant` in this doc comment must not fire; nor must the
/// `Instantiates` prose word below.
pub fn watchdog_anchor() -> u128 {
    // Instantiates nothing but a timestamp.
    let t0 = std::time::Instant::now(); // xtask: allow-wall-clock
    t0.elapsed().as_millis()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_hash_sets() {
        let mut s = std::collections::HashSet::new();
        s.insert(1u32);
        assert!(s.contains(&1));
    }
}
