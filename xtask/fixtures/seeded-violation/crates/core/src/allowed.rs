//! Fixture counterpart: lines the lints must NOT flag — annotated
//! allowances, comment mentions, and test-module code.

// A keyed lookup that never iterates, with the required annotation:
// xtask: allow-hash-collection — keyed lookup only, never iterated
use std::collections::HashMap;

/// Mentioning HashMap in a doc comment is fine.
pub fn lookup(m: &HashMap<u64, u64>, k: u64) -> Option<u64> { // xtask: allow-hash-collection
    // HashMap in a line comment is also fine.
    m.get(&k).copied()
}

/// A dev-tool toggle with the required annotation; `env::var` in this
/// doc comment must not fire either.
pub fn private_regs() -> bool {
    std::env::var("PRIVATE_REGS").is_ok() // xtask: allow-env-read
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_hash_sets() {
        let mut s = std::collections::HashSet::new();
        s.insert(1u32);
        assert!(s.contains(&1));
    }
}
