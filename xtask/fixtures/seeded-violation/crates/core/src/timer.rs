//! Fixture: wall-clock reads the determinism lint must flag.

/// Timing simulator work off the host clock: machine-dependent output.
pub fn elapsed_ms(t0: std::time::Instant) -> u128 {
    t0.elapsed().as_millis()
}

/// `SystemTime` is just as nondeterministic as `Instant`.
pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
