//! Fixture: an allow-marker that suppresses nothing must hard-fail.

// xtask: allow-wall-clock — stale: there is no wall-clock read below
pub fn pure() -> u32 {
    7
}

/// Stale markers of the other rules are refused the same way.
pub fn also_pure() -> u32 {
    41 // xtask: allow-unwrap
}
