//! Seeded fixture: a panicking extractor in a pipeline hot path.

pub fn commit(head: Option<u64>) -> u64 {
    head.unwrap()
}

pub fn rename(slot: Option<u32>) -> u32 {
    slot.expect("free list empty")
}
