//! Seeded fixture: a narrowing cast truncating a stats counter.

pub fn record(total_committed: u64) -> u32 {
    total_committed as u32
}
